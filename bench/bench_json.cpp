// Machine-readable perf baseline: emits BENCH_sim.json with the throughput
// of the learning- and validation-relevant hot paths on the gen5378 suite
// circuit. Every perf PR diffs against the numbers this driver produced at
// its base commit, so the schema is deliberately small and stable:
//
//   { "circuit": "gen5378",
//     "benchmarks": [ {"name": ..., "items_per_sec": ..., "seconds": ...,
//                      "items": ..., "threads": ...}, ... ] }
//
// The *_mt rows run the same work as their serial twins on one worker per
// hardware thread through the exec subsystem ("threads" records the actual
// worker count — on a 1-core machine they measure the speculation overhead,
// not a speedup); results are bit-identical to the serial rows by design.
// The *_batch rows run the same work through the 64-lane bit-parallel
// BatchFrameSimulator (learn_full_pass keeps batch_lanes = 0 so its row
// stays comparable across PRs); results are bit-identical to the serial
// rows by design.
//
// Usage: bench_bench_json [--min-seconds S] [output.json]
// (default: 2.0-second budget per row, BENCH_sim.json in cwd; "-" writes
// the JSON to stdout only; CI uses a small --min-seconds as a smoke check
// that every row still runs and emits well-formed JSON).

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "cnf/dispatch.hpp"
#include "core/db_io.hpp"
#include "netlist/bench_io.hpp"
#include "server/json.hpp"
#include "server/server.hpp"
#include "core/seq_learn.hpp"
#include "exec/pool.hpp"
#include "fault/collapse.hpp"
#include "fault/fault_sim.hpp"
#include "logic/pattern.hpp"
#include "netlist/topology.hpp"
#include "sim/batch_frame_sim.hpp"
#include "sim/frame_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/suite.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace seqlearn;
using logic::Val3;
using netlist::Netlist;

struct Row {
    std::string name;
    double items_per_sec = 0;
    double seconds = 0;
    std::size_t items = 0;
    unsigned threads = 1;
    /// Extra JSON members appended verbatim after the standard ones, e.g.
    /// "\"overhead_pct\": 1.3" — rows with row-specific metrics use this
    /// instead of widening the stable schema for everyone.
    std::string extra;
};

// Repeat `body(items_per_rep)` until `min_seconds` of wall time accumulates.
template <typename Body>
Row measure(std::string name, std::size_t items_per_rep, double min_seconds, Body&& body) {
    Row row;
    row.name = std::move(name);
    const util::Timer timer;
    while (timer.seconds() < min_seconds) {
        body();
        row.items += items_per_rep;
    }
    row.seconds = timer.seconds();
    row.items_per_sec = static_cast<double>(row.items) / row.seconds;
    return row;
}

double g_min_seconds = 2.0;

Row bench_frame_sim(const Netlist& nl) {
    sim::FrameSimulator fsim(nl, sim::SeqGating::all_open(nl));
    const auto stems = nl.stems();
    sim::FrameSimOptions opt;
    opt.max_frames = 50;
    sim::FrameSimResult res;  // reused: the zero-allocation steady state
    std::size_t i = 0;
    return measure("frame_sim_stem_injection", 1, g_min_seconds, [&] {
        const sim::Injection inj{0, stems[i++ % stems.size()], Val3::One};
        fsim.run_into({&inj, 1}, opt, res);
    });
}

Row bench_frame_sim_batch(const Netlist& nl, const netlist::Topology& topo) {
    // The same stem-injection workload as frame_sim_stem_injection, 64
    // scenarios per event sweep: one batched run plus full per-lane
    // extraction; items = scenarios, so the row is directly comparable.
    sim::BatchFrameSimulator bsim(topo, sim::SeqGating::all_open(nl));
    const auto stems = nl.stems();
    sim::FrameSimOptions opt;
    opt.max_frames = 50;
    std::vector<sim::Injection> inj(64);
    std::vector<sim::BatchLane> lanes(64);
    std::vector<sim::FrameSimResult> outs(64);
    sim::BatchFrameResult res;
    std::size_t i = 0;
    return measure("frame_sim_batch_injection", 64, g_min_seconds, [&] {
        for (int l = 0; l < 64; ++l) {
            inj[l] = {0, stems[i++ % stems.size()], Val3::One};
            lanes[l] = {{&inj[l], 1}, 0};
        }
        bsim.run_batch(lanes, opt, res);
        res.extract_all(outs);
    });
}

Row bench_parallel_patterns(const Netlist& nl) {
    sim::ParallelSim psim(nl);
    util::Rng rng(1);
    std::vector<logic::Pattern> pats(nl.size());
    // 64 patterns per evaluation.
    return measure("parallel_pattern_eval", 64, g_min_seconds,
                   [&] { psim.eval_random(pats, rng); });
}

Row bench_learn(const Netlist& nl, const netlist::Topology& topo, exec::Pool* pool,
                unsigned threads, const char* name, std::size_t batch_lanes) {
    // One full learn() pass per rep over the shared CSR snapshot (the
    // Session pattern); items = stems processed per pass. batch_lanes = 0
    // keeps the serial rows on the one-run-per-injection path so they stay
    // comparable across PRs; the _batch row turns the 64-lane engine on.
    core::LearnConfig cfg;
    cfg.threads = threads;
    cfg.executor = pool;
    cfg.batch_lanes = batch_lanes;
    const std::size_t stems = nl.stems().size();
    Row row = measure(name, stems, g_min_seconds, [&] {
        const core::LearnResult r = core::learn(nl, topo, cfg);
        if (r.stats.stems_processed == 0) std::fprintf(stderr, "learn: empty pass?\n");
    });
    row.threads = threads;
    return row;
}

Row bench_fault_sim(const Netlist& nl, const netlist::Topology& topo, exec::Pool* pool,
                    unsigned threads, bool mt) {
    // drop_detected over the full collapsed list with 24-frame random
    // sequences — the validation hot path of every ATPG campaign; items =
    // faults simulated per pass. The simulator shares one CSR snapshot, the
    // Session pattern; the mt row fans the 63-fault passes over the pool.
    fault::FaultSimulator fsim(topo);
    if (pool != nullptr) fsim.set_executor(pool, threads);
    const fault::CollapsedFaults collapsed = fault::collapse(nl);
    util::Rng rng(1);
    sim::InputSequence seq(24, sim::InputFrame(nl.inputs().size(), logic::Val3::X));
    Row row = measure(
        mt ? "fault_sim_drop_detected_mt" : "fault_sim_drop_detected",
        collapsed.size(), g_min_seconds, [&] {
            for (auto& frame : seq)
                for (auto& v : frame)
                    v = rng.chance(0.5) ? logic::Val3::One : logic::Val3::Zero;
            fault::FaultList list(collapsed.representatives());
            fsim.drop_detected(seq, list);
        });
    row.threads = threads;
    return row;
}

Row bench_budget_overhead(const Netlist& nl, const netlist::Topology& topo) {
    // Cost of the governance layer on the learning hot path: full serial
    // scalar passes with an active (but never-tripping) Budget — deadline
    // polling at every stem boundary — interleaved with identical ungoverned
    // passes, so drift hits both sides equally. The row reports governed
    // throughput; overhead_pct is the governed-vs-plain wall-time delta (CI
    // pins it under 2%; polling is one steady_clock read per stem).
    core::LearnConfig governed;
    governed.threads = 1;
    governed.batch_lanes = 0;
    governed.budget.deadline = std::chrono::hours(24);
    governed.budget.max_items = static_cast<std::size_t>(-1) / 2;
    core::LearnConfig plain = governed;
    plain.budget = {};

    Row row;
    row.name = "budget_overhead";
    double governed_s = 0;
    double governed_min = 1e300;
    double plain_min = 1e300;
    unsigned pairs = 0;
    const util::Timer total;
    // At least 3 pairs: the overhead estimate uses best-of-N pass times,
    // which filters scheduler noise a single smoke-length pair would not.
    while (pairs < 3 || total.seconds() < 2 * g_min_seconds) {
        {
            const util::Timer t;
            const core::LearnResult r = core::learn(nl, topo, governed);
            const double s = t.seconds();
            governed_s += s;
            governed_min = std::min(governed_min, s);
            row.items += nl.stems().size();
            if (!r.outcome.ok()) std::fprintf(stderr, "budget_overhead: tripped?\n");
        }
        {
            const util::Timer t;
            (void)core::learn(nl, topo, plain);
            plain_min = std::min(plain_min, t.seconds());
        }
        ++pairs;
    }
    row.seconds = governed_s;
    row.items_per_sec = static_cast<double>(row.items) / governed_s;
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"overhead_pct\": %.2f",
                  (governed_min / plain_min - 1.0) * 100.0);
    row.extra = buf;
    return row;
}

Row bench_learn_resume(const Netlist& nl, const netlist::Topology& topo) {
    // The checkpoint/resume path end to end: a budgeted pass stopped halfway
    // through the stems, a full text-format checkpoint round trip, and a
    // resumed pass to completion — interleaved with uninterrupted one-shot
    // passes. overhead_pct is the price of splitting a run in two (checkpoint
    // serialization plus the resumed pass's state rebuild).
    core::LearnConfig base;
    base.threads = 1;
    base.batch_lanes = 0;
    core::LearnConfig budgeted = base;
    budgeted.budget.max_items = nl.stems().size() / 2;

    Row row;
    row.name = "learn_resume";
    double split_s = 0;
    double split_min = 1e300;
    double one_shot_min = 1e300;
    unsigned pairs = 0;
    const util::Timer total;
    while (pairs < 3 || total.seconds() < 2 * g_min_seconds) {
        {
            const util::Timer t;
            const core::LearnResult partial = core::learn(nl, topo, budgeted);
            std::stringstream ss;
            core::save_checkpoint(ss, nl, core::make_checkpoint(nl, partial));
            const core::LearnCheckpoint ckpt = core::load_checkpoint(ss, nl);
            const core::LearnResult resumed = core::resume_learn(nl, topo, base, ckpt);
            const double s = t.seconds();
            split_s += s;
            split_min = std::min(split_min, s);
            row.items += nl.stems().size();
            if (!resumed.outcome.ok()) std::fprintf(stderr, "learn_resume: not ok?\n");
        }
        {
            const util::Timer t;
            (void)core::learn(nl, topo, base);
            one_shot_min = std::min(one_shot_min, t.seconds());
        }
        ++pairs;
    }
    row.seconds = split_s;
    row.items_per_sec = static_cast<double>(row.items) / split_s;
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"overhead_pct\": %.2f",
                  (split_min / one_shot_min - 1.0) * 100.0);
    row.extra = buf;
    return row;
}

Row bench_multi_session_atpg(const Netlist& nl) {
    // The serving pattern of the Design/Session split: K concurrent
    // Sessions over ONE shared immutable Design carrying ONE frozen
    // LearnedSnapshot, each running an independent ATPG campaign on its own
    // thread (campaigns capped at kCap targeted faults via the progress
    // observer so a rep stays bounded). Items = faults targeted across all
    // sessions; on a 1-core box the threads serialize and the row measures
    // the sharing overhead, on real hardware it fans out.
    constexpr unsigned kSessions = 4;
    constexpr std::size_t kCap = 32;
    api::Session learner{Netlist(nl)};
    const api::DesignPtr design =
        api::DesignBuilder(Netlist(nl)).learned(learner.freeze_learned()).build();
    Row row = measure("multi_session_atpg", kSessions * kCap, g_min_seconds, [&] {
        std::vector<std::thread> threads;
        threads.reserve(kSessions);
        for (unsigned t = 0; t < kSessions; ++t) {
            threads.emplace_back([&design] {
                api::SessionConfig cfg;
                cfg.threads = 1;
                cfg.progress = [](const api::Progress& p) {
                    return !(p.stage == api::Stage::Atpg && p.done >= kCap);
                };
                api::Session session(design, std::move(cfg));
                atpg::AtpgConfig acfg;
                acfg.mode = atpg::LearnMode::ForbiddenValue;
                acfg.backtrack_limit = 30;
                // Generation throughput only: the untestability provers are
                // a separate (and much slower) per-fault cost that would
                // drown the sharing signal this row exists to track.
                acfg.identify_untestable = false;
                session.atpg(acfg);
            });
        }
        for (std::thread& t : threads) t.join();
    });
    row.threads = kSessions;
    return row;
}

Row bench_server_throughput() {
    // The serving subsystem end to end: a real loopback Server, 8 client
    // threads each on its own connection, warm cache (the circuit is loaded
    // and learned once up front), mixed stats / learn / atpg traffic — the
    // steady state of a long-lived daemon. Runs on fig1x so request overhead
    // (framing, JSON, digest lookup, session setup) dominates over engine
    // time; items = requests served; p95_ms is across every request.
    constexpr unsigned kClients = 8;
    server::ServerConfig scfg;
    scfg.service.max_sessions = kClients;
    scfg.service.threads = 1;
    server::Server srv(scfg);
    std::string err;
    if (!srv.start(&err)) {
        std::fprintf(stderr, "server_throughput: %s\n", err.c_str());
        Row row;
        row.name = "server_throughput";
        return row;
    }

    const auto connect_client = [&srv]() -> int {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(srv.port());
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    };
    const auto rpc = [](int fd, std::string frame, std::string* out) -> bool {
        frame += '\n';
        std::size_t sent = 0;
        while (sent < frame.size()) {
            const ssize_t n =
                ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
            if (n <= 0) return false;
            sent += static_cast<std::size_t>(n);
        }
        out->clear();
        char ch;
        while (::recv(fd, &ch, 1, 0) == 1) {
            if (ch == '\n') return true;
            out->push_back(ch);
        }
        return false;
    };

    // Warm the cache: load + learn once; every benched request rides the
    // attached snapshot.
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("fig1x"));
    const int warm_fd = connect_client();
    std::string response;
    std::string digest;
    if (warm_fd >= 0 &&
        rpc(warm_fd,
            "{\"cmd\": \"load\", \"bench\": \"" + server::json_escape(bench) + "\"}",
            &response)) {
        if (const auto doc = server::JsonValue::parse(response, nullptr))
            digest = doc->get_string("design");
        rpc(warm_fd, "{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}", &response);
        ::close(warm_fd);
    }

    const std::array<std::string, 3> frames = {
        "{\"cmd\": \"stats\", \"design\": \"" + digest + "\"}",
        "{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}",
        "{\"cmd\": \"atpg\", \"design\": \"" + digest + "\"}",
    };

    std::vector<std::vector<double>> latencies(kClients);
    std::vector<std::size_t> counts(kClients, 0);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (unsigned t = 0; t < kClients; ++t) {
            clients.emplace_back([&, t] {
                const int fd = connect_client();
                if (fd < 0) return;
                std::string resp;
                const util::Timer timer;
                std::size_t i = t;  // stagger the mix across clients
                while (timer.seconds() < g_min_seconds) {
                    const util::Timer one;
                    if (!rpc(fd, frames[i++ % frames.size()], &resp)) break;
                    latencies[t].push_back(one.seconds() * 1000.0);
                    ++counts[t];
                }
                ::close(fd);
            });
        }
        for (std::thread& c : clients) c.join();
    }
    srv.stop();

    Row row;
    row.name = "server_throughput";
    row.threads = kClients;
    std::vector<double> all;
    double span = 0;
    for (unsigned t = 0; t < kClients; ++t) {
        row.items += counts[t];
        all.insert(all.end(), latencies[t].begin(), latencies[t].end());
        for (const double ms : latencies[t]) span += ms / 1000.0;
    }
    // Wall time ≈ per-client time; requests/s counts all clients together.
    row.seconds = span / kClients;
    row.items_per_sec = row.seconds > 0 ? static_cast<double>(row.items) / row.seconds : 0;
    double p95 = 0;
    if (!all.empty()) {
        std::sort(all.begin(), all.end());
        p95 = all[std::min(all.size() - 1,
                           static_cast<std::size_t>(all.size() * 0.95))];
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"p95_ms\": %.3f", p95);
    row.extra = buf;
    return row;
}

Row bench_scenario(const std::string& circuit, const Netlist& nl,
                   const netlist::Topology& topo, guide::OrderStrategy order,
                   guide::Guidance guidance, cnf::Backend backend) {
    // One full ATPG campaign per row over the collapsed fault list — the
    // (circuit x ordering x guidance x backend) matrix the guidance work is
    // judged by. Unlike the throughput rows these run exactly once (coverage
    // and abort counts are deterministic, repeating them buys nothing), with
    // a deliberately shallow window schedule and backtrack limit so the full
    // matrix stays a bounded slice of the real campaign: every row covers
    // the whole fault list, so scoap-vs-none deltas are apples to apples.
    atpg::AtpgConfig cfg;
    cfg.threads = 1;
    cfg.mode = atpg::LearnMode::None;
    cfg.identify_untestable = false;
    cfg.backtrack_limit = 12;
    cfg.windows = {1, 2};
    cfg.backend = backend;
    cfg.sat_frames = 3;
    cfg.order = order;
    cfg.guidance = guidance;
    if (guidance == guide::Guidance::Scoap) {
        // The guided configuration is the full recipe the paper-style flow
        // would ship: random warmup bulk-drops the easy faults, compaction
        // with random fill shrinks the pattern set.
        cfg.rand_warmup = 128;
        cfg.compact = true;
        cfg.fill = guide::FillMode::Random;
    }
    fault::FaultList list(fault::collapse(nl).representatives());

    Row row;
    const char* backend_name = backend == cnf::Backend::FrameSim ? "frame"
                               : backend == cnf::Backend::Sat    ? "sat"
                                                                 : "auto";
    row.name = "scenarios/" + circuit + "/" + std::string(guide::order_name(order)) +
               "/" + std::string(guide::guidance_name(guidance)) + "/" + backend_name;
    const util::Timer t;
    const atpg::AtpgOutcome out = atpg::run_atpg(topo, list, cfg);
    row.seconds = t.seconds();
    row.items = list.size();
    row.items_per_sec = static_cast<double>(row.items) / row.seconds;
    const fault::FaultList::Counts c = list.counts();
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "\"fault_coverage\": %.4f, \"test_coverage\": %.4f, "
                  "\"detected\": %zu, \"aborts\": %zu, \"untestable\": %zu, "
                  "\"patterns\": %zu, \"pattern_frames\": %zu, \"gen_calls\": %zu, "
                  "\"warmup_dropped\": %zu, \"compaction_before\": %zu",
                  list.fault_coverage(), list.test_coverage(), c.detected, c.aborted,
                  c.untestable, out.tests.size(), out.pattern_frames, out.gen_calls,
                  out.detected_by_warmup, out.compaction_before);
    row.extra = buf;
    if (!out.run.ok()) std::fprintf(stderr, "%s: campaign stopped early\n", row.name.c_str());
    return row;
}

Row bench_sat_untestable(const Netlist& nl, const netlist::Topology& topo) {
    // CNF backend classification throughput: prove_fault (fresh miter +
    // solver per fault, the campaign's SAT-phase pattern) over the collapsed
    // universe at K = 4 frames, one fault per rep, round-robin. Every rep
    // ends in a definitive verdict — witness or untestable-within-K — and
    // the split lands in extra so coverage shifts are visible in the diff.
    const fault::CollapsedFaults collapsed = fault::collapse(nl);
    const auto& reps = collapsed.representatives();
    std::size_t i = 0, untestable = 0, witnesses = 0;
    Row row = measure("sat_untestable", 1, g_min_seconds, [&] {
        const cnf::CnfVerdict v = cnf::prove_fault(topo, reps[i++ % reps.size()], 4,
                                                   nullptr, nullptr, nullptr);
        if (v.kind == cnf::CnfVerdict::Kind::Untestable) ++untestable;
        else if (v.kind == cnf::CnfVerdict::Kind::Test) ++witnesses;
    });
    // Paper Table 4 cross-check: the tie-gate-derived untestable count (the
    // paper's learning by-product) against what the bounded CNF prover saw
    // in this row's round-robin slice. The delta is recorded, not pinned —
    // the CNF count is untestable-within-4 over however many reps fit the
    // budget, so it lower-bounds the tie-derived (unbounded) figure.
    core::LearnConfig lcfg;
    lcfg.threads = 1;
    const core::LearnResult learned = core::learn(nl, topo, lcfg);
    const std::size_t tie_untestable =
        learned.ties.untestable_faults(nl, fault::fault_universe(nl)).size();
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "\"untestable\": %zu, \"witnesses\": %zu, "
                  "\"table4_tie_untestable\": %zu, \"table4_sat_delta\": %lld",
                  untestable, witnesses, tie_untestable,
                  static_cast<long long>(untestable) -
                      static_cast<long long>(tie_untestable));
    row.extra = buf;
    return row;
}

Row bench_learn_sat_mode(const Netlist& nl, const netlist::Topology& topo) {
    // learn() with the SAT probe phase on: the full frame-sim pipeline plus
    // K-frame failed-literal mining over every stem. items = stems per pass,
    // directly comparable to learn_full_pass — the delta is the SAT phase.
    core::LearnConfig cfg;
    cfg.threads = 1;
    cfg.sat_frames = 4;
    const std::size_t stems = nl.stems().size();
    std::size_t sat_ties = 0, sat_relations = 0;
    Row row = measure("learn_sat_mode", stems, g_min_seconds, [&] {
        const core::LearnResult r = core::learn(nl, topo, cfg);
        sat_ties = r.stats.sat_ties;
        sat_relations = r.stats.sat_relations;
        if (r.stats.sat_probes == 0) std::fprintf(stderr, "learn_sat_mode: no probes?\n");
    });
    char buf[96];
    std::snprintf(buf, sizeof buf, "\"sat_ties\": %zu, \"sat_relations\": %zu",
                  sat_ties, sat_relations);
    row.extra = buf;
    return row;
}

Row bench_server_warm_restart(const Netlist& nl, const netlist::Topology& topo) {
    // The durable store's warm-restart path, end to end through
    // Service::handle: each rep is a daemon restart — a fresh Service over
    // a populated --store directory (recovery scan included) answering one
    // stats request on the previously learned gen5378, which recompiles the
    // stored bench bytes and re-attaches the binary snapshot. The extra
    // members compare that against the cold alternative: re-running the
    // learn. items = restarts served.
    const std::string bench = netlist::write_bench_string(nl);
    const std::uint64_t digest = server::content_digest(bench);

    core::LearnConfig lcfg;
    lcfg.threads = 1;
    const util::Timer cold_timer;
    const core::LearnResult learned = core::learn(nl, topo, lcfg);
    const double cold_learn_s = cold_timer.seconds();

    Row row;
    row.name = "server_warm_restart";
    char dir_tmpl[] = "/tmp/seqlearn_bench_store_XXXXXX";
    const char* dir = ::mkdtemp(dir_tmpl);
    if (dir == nullptr) {
        std::fprintf(stderr, "server_warm_restart: mkdtemp failed\n");
        return row;
    }
    {
        server::SnapshotStoreConfig scfg;
        scfg.dir = dir;
        std::string err;
        const std::shared_ptr<server::SnapshotStore> store =
            server::SnapshotStore::open(std::move(scfg), &err);
        std::ostringstream bin;
        core::save_learned_binary(bin, nl, learned.db, learned.ties);
        if (!store || !store->put(digest, bench, std::move(bin).str(), &err)) {
            std::fprintf(stderr, "server_warm_restart: %s\n", err.c_str());
            return row;
        }
    }

    const std::string stats_frame =
        "{\"cmd\": \"stats\", \"design\": \"" + server::hex_u64(digest) + "\"}";
    row = measure("server_warm_restart", 1, g_min_seconds, [&] {
        server::ServiceConfig cfg;
        server::SnapshotStoreConfig scfg;
        scfg.dir = dir;
        std::string err;
        cfg.store = server::SnapshotStore::open(std::move(scfg), &err);
        server::Service svc(cfg);
        const std::string resp = svc.handle(stats_frame);
        if (resp.find("relation_hash") == std::string::npos)
            std::fprintf(stderr, "server_warm_restart: learned data not served\n");
    });

    const std::string entry = std::string(dir) + "/" + server::hex_u64(digest) + ".snap";
    ::unlink(entry.c_str());
    ::rmdir(dir);

    const double warm_s =
        row.items > 0 ? row.seconds / static_cast<double>(row.items) : 0;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "\"cold_learn_s\": %.3f, \"speedup_vs_cold\": %.1f", cold_learn_s,
                  warm_s > 0 ? cold_learn_s / warm_s : 0.0);
    row.extra = buf;
    return row;
}

Row bench_snapshot_load(const Netlist& nl, const netlist::Topology& topo) {
    // Snapshot deserialization on a learned gen5378 database: the binary v2
    // format against the text format, same data. This is the daemon's
    // restart path (and --load-db's); speedup_vs_text is what the binary
    // format buys. items = relations+ties decoded per load.
    core::LearnConfig cfg;
    cfg.threads = 1;
    const core::LearnResult learned = core::learn(nl, topo, cfg);

    std::ostringstream text_out, bin_out;
    core::save_learned(text_out, nl, learned.db, learned.ties);
    core::save_learned_binary(bin_out, nl, learned.db, learned.ties);
    const std::string text = text_out.str();
    const std::string bin = bin_out.str();
    const std::size_t items = learned.db.size() + learned.ties.count();

    double text_min = 1e300;
    {
        const util::Timer total;
        while (total.seconds() < g_min_seconds / 2) {
            std::istringstream in(text);
            const util::Timer t;
            (void)core::load_learned(in, nl);
            text_min = std::min(text_min, t.seconds());
        }
    }
    // Same statistic on both sides: best-of per-load. The loads are
    // deterministic, so min is the right noise-robust estimate; comparing a
    // text minimum against a binary average would skew the ratio.
    double bin_min = 1e300;
    Row row = measure("snapshot_load_binary", items, g_min_seconds / 2, [&] {
        std::istringstream in(bin);
        const util::Timer t;
        (void)core::load_learned_any(in, nl);  // sniffs magic, binary path
        bin_min = std::min(bin_min, t.seconds());
    });
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "\"speedup_vs_text\": %.1f, \"text_bytes\": %zu, \"binary_bytes\": %zu",
                  text_min / bin_min, text.size(), bin.size());
    row.extra = buf;
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_sim.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-seconds") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "usage: %s [--min-seconds S] [output.json]\n", argv[0]);
                return 2;
            }
            g_min_seconds = std::atof(argv[++i]);
            if (g_min_seconds <= 0) {
                std::fprintf(stderr, "--min-seconds wants a positive number, got \"%s\"\n",
                             argv[i]);
                return 2;
            }
        } else if (argv[i][0] == '-' && argv[i][1] == '-') {
            // "-" (stdout only) is a valid path; unknown --flags are not.
            std::fprintf(stderr, "unknown flag %s\nusage: %s [--min-seconds S] [output.json]\n",
                         argv[i], argv[0]);
            return 2;
        } else {
            out_path = argv[i];
        }
    }
    const Netlist nl = workload::suite_circuit("gen5378");
    const netlist::Topology topo(nl);
    const unsigned hw = exec::Pool::hardware_threads();
    exec::Pool pool(hw);

    std::vector<Row> rows;
    rows.push_back(bench_frame_sim(nl));
    rows.push_back(bench_frame_sim_batch(nl, topo));
    rows.push_back(bench_parallel_patterns(nl));
    rows.push_back(bench_learn(nl, topo, nullptr, 1, "learn_full_pass", 0));
    rows.push_back(bench_learn(nl, topo, nullptr, 1, "learn_full_pass_batch", 64));
    rows.push_back(bench_fault_sim(nl, topo, nullptr, 1, /*mt=*/false));
    rows.push_back(bench_learn(nl, topo, &pool, hw, "learn_full_pass_mt", 0));
    rows.push_back(bench_fault_sim(nl, topo, &pool, hw, /*mt=*/true));
    rows.push_back(bench_multi_session_atpg(nl));
    rows.push_back(bench_budget_overhead(nl, topo));
    rows.push_back(bench_learn_resume(nl, topo));
    rows.push_back(bench_server_throughput());
    rows.push_back(bench_server_warm_restart(nl, topo));
    rows.push_back(bench_snapshot_load(nl, topo));
    rows.push_back(bench_sat_untestable(nl, topo));
    rows.push_back(bench_learn_sat_mode(nl, topo));

    // Guidance scenario matrix: every ordering x guidance combination on a
    // small and a large suite circuit through the frame-sim backend, plus
    // the SCOAP-aware auto router on the small one (auto re-dispatches every
    // abort to the CNF backend, which would dwarf the matrix on gen5378).
    {
        const Netlist small = workload::suite_circuit("rt510a");
        const netlist::Topology small_topo(small);
        constexpr std::array<guide::OrderStrategy, 3> orders = {
            guide::OrderStrategy::Index, guide::OrderStrategy::ScoapHardFirst,
            guide::OrderStrategy::Random};
        constexpr std::array<guide::Guidance, 2> modes = {guide::Guidance::None,
                                                          guide::Guidance::Scoap};
        for (const guide::OrderStrategy order : orders)
            for (const guide::Guidance g : modes) {
                rows.push_back(
                    bench_scenario("rt510a", small, small_topo, order, g,
                                   cnf::Backend::FrameSim));
                rows.push_back(
                    bench_scenario("gen5378", nl, topo, order, g, cnf::Backend::FrameSim));
            }
        rows.push_back(bench_scenario("rt510a", small, small_topo,
                                      guide::OrderStrategy::Index,
                                      guide::Guidance::None, cnf::Backend::Auto));
        rows.push_back(bench_scenario("rt510a", small, small_topo,
                                      guide::OrderStrategy::Index,
                                      guide::Guidance::Scoap, cnf::Backend::Auto));
    }

    std::string json = "{\n  \"circuit\": \"gen5378\",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"items_per_sec\": %.1f, "
                      "\"seconds\": %.3f, \"items\": %zu, \"threads\": %u",
                      rows[i].name.c_str(), rows[i].items_per_sec, rows[i].seconds,
                      rows[i].items, rows[i].threads);
        json += buf;
        if (!rows[i].extra.empty()) json += ", " + rows[i].extra;
        json += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    if (out_path != "-") {
        if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
    }
    return 0;
}
