// Ablations over the design choices DESIGN.md calls out:
//   1. frame depth (max_frames): what sequential depth buys over
//      combinational-only learning;
//   2. learning stages: single-node / + multiple-node / + gate equivalence;
//   3. the state-repeat early stop: learning cost with and without it.

#include "api/session.hpp"
#include "core/seq_learn.hpp"
#include "workload/suite.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace seqlearn;
using netlist::Netlist;

void frame_depth_sweep(const char* name) {
    const api::DesignPtr design =
        api::DesignBuilder(workload::suite_circuit(name)).build();
    std::printf("\n== Ablation: frame depth (%s) ==\n", name);
    std::printf("%8s | %10s %10s %8s %8s | %8s\n", "frames", "FF-FF", "Gate-FF", "ties",
                "multi", "CPU(s)");
    for (const std::uint32_t frames : {1u, 2u, 5u, 10u, 20u, 50u}) {
        core::LearnConfig cfg;
        cfg.max_frames = frames;
        const core::LearnResult r = api::Session(design).learn(cfg);
        std::printf("%8u | %10zu %10zu %8zu %8zu | %8.3f\n", frames,
                    r.stats.ff_ff_relations, r.stats.gate_ff_relations, r.ties.count(),
                    r.stats.multi_relations, r.stats.cpu_seconds);
    }
}

void stage_sweep(const char* name) {
    const api::DesignPtr design =
        api::DesignBuilder(workload::suite_circuit(name)).build();
    std::printf("\n== Ablation: learning stages (%s) ==\n", name);
    std::printf("%-22s | %10s %10s %8s | %8s\n", "stage", "FF-FF", "Gate-FF", "ties",
                "CPU(s)");
    struct Stage {
        const char* label;
        bool multi;
        bool equiv;
    };
    for (const Stage s : {Stage{"single-node", false, false},
                          Stage{"+ multiple-node", true, false},
                          Stage{"+ gate equivalence", true, true}}) {
        core::LearnConfig cfg;
        cfg.max_frames = 50;
        cfg.multiple_node = s.multi;
        cfg.use_equivalences = s.equiv;
        const core::LearnResult r = api::Session(design).learn(cfg);
        std::printf("%-22s | %10zu %10zu %8zu | %8.3f\n", s.label,
                    r.stats.ff_ff_relations, r.stats.gate_ff_relations, r.ties.count(),
                    r.stats.cpu_seconds);
    }
}

void repeat_stop_sweep(const char* name) {
    const api::DesignPtr design =
        api::DesignBuilder(workload::suite_circuit(name)).build();
    std::printf("\n== Ablation: state-repeat early stop (%s) ==\n", name);
    for (const bool stop : {true, false}) {
        core::LearnConfig cfg;
        cfg.max_frames = 50;
        cfg.stop_on_state_repeat = stop;
        const core::LearnResult r = api::Session(design).learn(cfg);
        std::printf("stop=%-5s -> FF-FF %zu, Gate-FF %zu, CPU %.3f s\n",
                    stop ? "on" : "off", r.stats.ff_ff_relations,
                    r.stats.gate_ff_relations, r.stats.cpu_seconds);
    }
}

void BM_LearnDepth(benchmark::State& state) {
    // Compile the Design once: the timed loop measures learn() only, not
    // fault collapsing / clock classes / the netlist copy.
    const api::DesignPtr design =
        api::DesignBuilder(workload::suite_circuit("gen1423")).build();
    core::LearnConfig cfg;
    cfg.max_frames = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        const core::LearnResult r = api::Session(design).learn(cfg);
        benchmark::DoNotOptimize(r.stats.ff_ff_relations);
    }
}
BENCHMARK(BM_LearnDepth)->Arg(1)->Arg(5)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    frame_depth_sweep("gen5378");
    frame_depth_sweep("rt510a");
    stage_sweep("gen5378");
    stage_sweep("fig1x");
    repeat_stop_sweep("gen5378");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
