// Regenerates paper Table 5: sequential ATPG with and without learned data,
// at two backtrack limits. For every circuit, three campaigns run on
// identical fault lists:
//   - "No learning":     the engine ignores learned data entirely;
//   - "Forbidden values": relations applied as forbidden-value implications
//                         (the paper's proposal) + tie facts;
//   - "Implications":     relations applied as known-value implications +
//                         tie facts.
// Reported per campaign: detected faults, untestable faults, and CPU
// seconds. As in the paper, untestable counts include c-cycle-redundant
// tie faults for the learning campaigns (count_c_cycle_redundant).
//
// Set SEQLEARN_BENCH_SMALL=1 to run only the retimed family.

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "workload/suite.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace {

using namespace seqlearn;
using atpg::AtpgConfig;
using atpg::LearnMode;
using netlist::Netlist;

bool small_mode() {
    const char* v = std::getenv("SEQLEARN_BENCH_SMALL");
    return v != nullptr && v[0] == '1';
}
// (The table-5 suite is already budgeted; SEQLEARN_BENCH_SMALL=1 trims it
// to the retimed family for smoke runs.)

struct Row {
    std::size_t detected = 0;
    std::size_t untestable = 0;
    double cpu = 0.0;
};

Row campaign(const Netlist& nl, LearnMode mode, const core::LearnResult* learned,
             std::uint32_t backtrack_limit) {
    const netlist::Topology topo(nl);
    fault::FaultList list(fault::collapse(nl).representatives());
    AtpgConfig cfg;
    cfg.mode = mode;
    cfg.learned = learned;
    cfg.backtrack_limit = backtrack_limit;
    cfg.count_c_cycle_redundant = learned != nullptr;
    cfg.redundancy_effort = 500;
    cfg.windows = {1, 2, 3, 4, 6, 8};
    const atpg::AtpgOutcome out = run_atpg(topo, list, cfg);
    const auto c = list.counts();
    return {c.detected, c.untestable, out.cpu_seconds};
}

void run_table5() {
    std::printf("\n== Table 5: ATPG with and without sequential learning ==\n");
    std::printf("%-9s %6s %5s | %5s %6s %8s | %5s %6s %8s | %5s %6s %8s\n", "Circuit",
                "Faults", "BT", "Det", "Untst", "CPU(s)", "Det", "Untst", "CPU(s)", "Det",
                "Untst", "CPU(s)");
    std::printf("%-9s %6s %5s | %21s | %21s | %21s\n", "", "", "", "No learning",
                "Forbidden values", "Implications");
    for (const std::string& name : workload::table5_names()) {
        if (small_mode() && name.substr(0, 2) != "rt") continue;
        const Netlist nl = workload::suite_circuit(name);
        core::LearnConfig lcfg;
        lcfg.max_frames = 50;
        const core::LearnResult learned = api::Session(netlist::Netlist(nl)).learn(lcfg);
        const std::size_t total = fault::collapse(nl).size();
        for (const std::uint32_t bt : {30u, 1000u}) {
            const Row none = campaign(nl, LearnMode::None, nullptr, bt);
            const Row forb = campaign(nl, LearnMode::ForbiddenValue, &learned, bt);
            const Row known = campaign(nl, LearnMode::KnownValue, &learned, bt);
            std::printf(
                "%-9s %6zu %5u | %5zu %6zu %8.2f | %5zu %6zu %8.2f | %5zu %6zu %8.2f\n",
                name.c_str(), total, bt, none.detected, none.untestable, none.cpu,
                forb.detected, forb.untestable, forb.cpu, known.detected, known.untestable,
                known.cpu);
            std::fflush(stdout);
        }
    }
}

void BM_AtpgRetimed(benchmark::State& state) {
    const Netlist nl = workload::suite_circuit("rt510a");
    const core::LearnResult learned = api::Session(netlist::Netlist(nl)).learn();
    const LearnMode mode = static_cast<LearnMode>(state.range(0));
    for (auto _ : state) {
        const Row r = campaign(nl, mode, mode == LearnMode::None ? nullptr : &learned, 30);
        benchmark::DoNotOptimize(r.detected);
        state.counters["detected"] = static_cast<double>(r.detected);
        state.counters["untestable"] = static_cast<double>(r.untestable);
    }
}
BENCHMARK(BM_AtpgRetimed)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_table5();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
