// Regenerates paper Table 4: untestable faults identified from tie gates
// (a by-product of sequential learning; includes c-cycle-redundant faults,
// per the paper's reference [13] semantics) versus a FIRE-style
// fault-independent identifier. Our FIRE variant implements the excitation
// half only (the propagation half needs per-fault reconvergence analysis to
// stay sound), so it is a conservative baseline — see EXPERIMENTS.md.

#include "api/session.hpp"
#include "core/seq_learn.hpp"
#include "fault/fault.hpp"
#include "util/timer.hpp"
#include "workload/fires.hpp"
#include "workload/suite.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace seqlearn;
using netlist::Netlist;

void run_table4() {
    std::printf("\n== Table 4: untestable faults — tie gates vs FIRE baseline ==\n");
    std::printf("%-10s | %14s %14s | %10s %10s\n", "Circuit", "TieGates", "FIRE",
                "tie CPU(s)", "fire CPU(s)");
    for (const std::string& name : workload::table4_names()) {
        const Netlist nl = workload::suite_circuit(name);
        const auto universe = fault::fault_universe(nl);

        util::Timer t1;
        core::LearnConfig cfg;
        cfg.max_frames = 50;
        const core::LearnResult r = api::Session(netlist::Netlist(nl)).learn(cfg);
        const auto tie_faults = r.ties.untestable_faults(nl, universe);
        const double tie_cpu = t1.seconds();

        util::Timer t2;
        const workload::FiresResult fires = workload::fires_untestable(nl, universe);
        const double fire_cpu = t2.seconds();

        std::printf("%-10s | %14zu %14zu | %10.2f %10.2f\n", name.c_str(),
                    tie_faults.size(), fires.untestable.size(), tie_cpu, fire_cpu);
        std::fflush(stdout);
    }
}

void BM_Fires(benchmark::State& state) {
    const Netlist nl = workload::suite_circuit("gen3330");
    const auto universe = fault::fault_universe(nl);
    for (auto _ : state) {
        const auto res = workload::fires_untestable(nl, universe);
        benchmark::DoNotOptimize(res.untestable.size());
    }
}
BENCHMARK(BM_Fires);

void BM_TieDerivation(benchmark::State& state) {
    const Netlist nl = workload::suite_circuit("gen3330");
    const auto universe = fault::fault_universe(nl);
    const core::LearnResult r = api::Session(netlist::Netlist(nl)).learn();
    for (auto _ : state) {
        const auto faults = r.ties.untestable_faults(nl, universe);
        benchmark::DoNotOptimize(faults.size());
    }
}
BENCHMARK(BM_TieDerivation);

}  // namespace

int main(int argc, char** argv) {
    run_table4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
