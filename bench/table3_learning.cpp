// Regenerates paper Table 3: sequential learning statistics per circuit —
// flip-flops, gates, FF-FF and Gate-FF relation counts (sequential-only,
// i.e. frame >= 1, as the paper isolates), and learning CPU seconds with a
// 50-frame simulation cap.
//
// The default run covers the small and mid suite (up to ind20k, ~9k gates,
// three clock domains, partial set/reset). Set SEQLEARN_BENCH_FULL=1 to add
// the largest stand-ins (gen38417/gen38584/ind60k/ind250k) — they complete
// unattended but take tens of minutes; learning cost scales linearly, and
// the default run already prints the aggregate gates/second.

#include "api/session.hpp"
#include "core/seq_learn.hpp"
#include "workload/suite.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace {

using namespace seqlearn;
using netlist::Netlist;

bool full_mode() {
    const char* v = std::getenv("SEQLEARN_BENCH_FULL");
    return v != nullptr && v[0] == '1';
}

void run_table3() {
    std::printf("\n== Table 3: sequential learning experiments (max 50 frames) ==\n");
    std::printf("%-10s %8s %8s | %10s %10s | %8s\n", "Circuit", "FFs", "Gates", "FF-FF",
                "Gate-FF", "CPU (s)");
    double total_gates = 0.0, total_cpu = 0.0;
    for (const std::string& name : workload::table3_names()) {
        if (!full_mode() && (name == "ind20k" || name == "ind60k" || name == "ind250k" ||
                             name == "gen38417" || name == "gen38584")) {
            continue;
        }
        const Netlist nl = workload::suite_circuit(name);
        const auto c = nl.counts();
        core::LearnConfig cfg;
        cfg.max_frames = 50;
        const core::LearnResult r = api::Session(netlist::Netlist(nl)).learn(cfg);
        std::printf("%-10s %8zu %8zu | %10zu %10zu | %8.2f\n", name.c_str(),
                    c.flip_flops + c.latches, c.combinational, r.stats.ff_ff_relations,
                    r.stats.gate_ff_relations, r.stats.cpu_seconds);
        std::fflush(stdout);
        total_gates += static_cast<double>(c.combinational);
        total_cpu += r.stats.cpu_seconds;
    }
    std::printf("throughput: %.0f gates/second across the suite\n",
                total_cpu > 0 ? total_gates / total_cpu : 0.0);
}

void BM_Learn(benchmark::State& state, const std::string& name) {
    // Design compiled once: the timed loop measures learn() only.
    const api::DesignPtr design =
        api::DesignBuilder(workload::suite_circuit(name)).build();
    core::LearnConfig cfg;
    cfg.max_frames = 50;
    for (auto _ : state) {
        const core::LearnResult r = api::Session(design).learn(cfg);
        benchmark::DoNotOptimize(r.stats.ff_ff_relations);
        state.counters["ff_ff"] = static_cast<double>(r.stats.ff_ff_relations);
        state.counters["gate_ff"] = static_cast<double>(r.stats.gate_ff_relations);
        state.counters["ties"] = static_cast<double>(r.ties.count());
    }
}

}  // namespace

int main(int argc, char** argv) {
    run_table3();
    benchmark::RegisterBenchmark("BM_Learn/gen1423",
                                 [](benchmark::State& s) { BM_Learn(s, "gen1423"); });
    benchmark::RegisterBenchmark("BM_Learn/gen5378",
                                 [](benchmark::State& s) { BM_Learn(s, "gen5378"); });
    benchmark::RegisterBenchmark("BM_Learn/rt510a",
                                 [](benchmark::State& s) { BM_Learn(s, "rt510a"); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
