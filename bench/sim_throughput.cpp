// Micro-benchmarks of the simulation substrate: the event-driven learning
// simulator, the 64-lane parallel-pattern simulator, and the 63-fault
// parallel fault simulator (vs. its serial equivalent — the ablation for
// the PPSFP design choice).

#include "fault/collapse.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/topology.hpp"
#include "sim/frame_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"
#include "workload/suite.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace seqlearn;
using logic::Val3;
using netlist::Netlist;

const Netlist& bench_circuit() {
    static const Netlist nl = workload::suite_circuit("gen5378");
    return nl;
}

void BM_FrameSimStemInjection(benchmark::State& state) {
    const Netlist& nl = bench_circuit();
    sim::FrameSimulator fsim(nl, sim::SeqGating::all_open(nl));
    const auto stems = nl.stems();
    std::size_t i = 0;
    sim::FrameSimOptions opt;
    opt.max_frames = 50;
    // The learning hot path: one frame-0 injection per run, result buffers
    // reused across runs (zero heap allocations in steady state).
    sim::FrameSimResult res;
    for (auto _ : state) {
        const sim::Injection inj{0, stems[i % stems.size()], Val3::One};
        fsim.run_into({&inj, 1}, opt, res);
        benchmark::DoNotOptimize(res.implied.size());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameSimStemInjection);

void BM_ParallelPatterns(benchmark::State& state) {
    const Netlist& nl = bench_circuit();
    sim::ParallelSim psim(nl);
    util::Rng rng(1);
    std::vector<logic::Pattern> pats(nl.size());
    for (auto _ : state) {
        psim.eval_random(pats, rng);
        benchmark::DoNotOptimize(pats.back());
    }
    // 64 patterns per evaluation.
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ParallelPatterns);

sim::InputSequence random_sequence(const Netlist& nl, std::size_t len, util::Rng& rng) {
    sim::InputSequence seq(len, sim::InputFrame(nl.inputs().size(), Val3::X));
    for (auto& frame : seq)
        for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
    return seq;
}

void BM_FaultSimParallel63(benchmark::State& state) {
    const Netlist& nl = bench_circuit();
    const netlist::Topology topo(nl);
    fault::FaultSimulator fsim(topo);
    const auto reps = fault::collapse(nl).representatives();
    util::Rng rng(2);
    const auto seq = random_sequence(nl, 20, rng);
    const std::span<const fault::Fault> chunk(reps.data(),
                                              std::min<std::size_t>(63, reps.size()));
    for (auto _ : state) {
        const auto det = fsim.run(seq, chunk);
        benchmark::DoNotOptimize(det.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_FaultSimParallel63);

void BM_FaultSimSerial(benchmark::State& state) {
    const Netlist& nl = bench_circuit();
    const netlist::Topology topo(nl);
    fault::FaultSimulator fsim(topo);
    const auto reps = fault::collapse(nl).representatives();
    util::Rng rng(2);
    const auto seq = random_sequence(nl, 20, rng);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fsim.detects(seq, reps[i % 63]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimSerial);

}  // namespace

BENCHMARK_MAIN();
