// Regenerates paper Tables 1 and 2 on the Figure-1 analog circuit.
//
// Table 1: per-stem forward-simulation results (which values are implied at
// which frame by injecting 0 and 1 on every fanout stem).
// Table 2: learned invalid-state relations, split by learning stage:
// single-node only, + multiple-node, + gate equivalence.

#include "api/session.hpp"
#include "core/seq_learn.hpp"
#include "netlist/clock_class.hpp"
#include "sim/frame_sim.hpp"
#include "workload/paper_circuits.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

namespace {

using namespace seqlearn;
using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

void print_table1(const Netlist& nl, std::uint32_t max_frames) {
    std::printf("\n== Table 1: stem simulation results (%s, %u frames shown) ==\n",
                nl.name().c_str(), max_frames);
    std::printf("%-8s", "Stem");
    for (std::uint32_t t = 0; t < max_frames; ++t) std::printf(" | T=%-22u", t);
    std::printf("\n");
    sim::FrameSimulator fsim(nl, sim::SeqGating::all_open(nl));
    for (const GateId stem : nl.stems()) {
        for (const Val3 v : {Val3::Zero, Val3::One}) {
            const std::vector<sim::Injection> inj{{0, stem, v}};
            sim::FrameSimOptions opt;
            opt.max_frames = max_frames;
            const auto res = fsim.run(inj, opt);
            std::printf("%-6s=%c", nl.name_of(stem).c_str(), logic::to_char(v));
            for (std::uint32_t t = 0; t < max_frames; ++t) {
                std::string cell;
                for (const auto& iv : res.implied) {
                    if (iv.frame != t || iv.gate == stem) continue;
                    if (!cell.empty()) cell += ",";
                    cell += nl.name_of(iv.gate) + "=" + logic::to_char(iv.value);
                }
                if (cell.empty()) cell = "{}";
                if (cell.size() > 22) cell = cell.substr(0, 19) + "...";
                std::printf(" | %-22s", cell.c_str());
            }
            std::printf("\n");
        }
    }
}

std::set<std::string> seq_relations(const Netlist& nl, const core::LearnConfig& cfg,
                                    bool ff_ff_only) {
    std::set<std::string> out;
    const core::LearnResult r = api::Session(netlist::Netlist(nl)).learn(cfg);
    for (const core::Relation& rel : r.db.relations()) {
        if (rel.frame < 1) continue;
        const bool lhs_ff = netlist::is_sequential(nl.type(rel.lhs.gate));
        const bool rhs_ff = netlist::is_sequential(nl.type(rel.rhs.gate));
        if (ff_ff_only ? !(lhs_ff && rhs_ff) : (lhs_ff == rhs_ff)) continue;
        out.insert(to_string(nl, rel));
    }
    return out;
}

void print_table2(const Netlist& nl) {
    core::LearnConfig single;
    single.multiple_node = false;
    single.use_equivalences = false;
    core::LearnConfig multi = single;
    multi.multiple_node = true;
    core::LearnConfig full;  // everything on

    auto diff = [](const std::set<std::string>& a, const std::set<std::string>& b) {
        std::set<std::string> d;
        std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                            std::inserter(d, d.begin()));
        return d;
    };
    auto print_staged = [&](const char* title, bool ff_ff_only) {
        const auto s1 = seq_relations(nl, single, ff_ff_only);
        const auto s2 = seq_relations(nl, multi, ff_ff_only);
        const auto s3 = seq_relations(nl, full, ff_ff_only);
        const auto extra_multi = diff(s1, s2);
        const auto extra_equiv = diff(s2, s3);
        std::printf("\n== Table 2: %s (%s) ==\n", title, nl.name().c_str());
        std::printf("%-28s %-28s %-28s\n", "Single-Node", "Additional Multiple-Node",
                    "Additional Gate-Equivalence");
        auto it1 = s1.begin();
        auto it2 = extra_multi.begin();
        auto it3 = extra_equiv.begin();
        while (it1 != s1.end() || it2 != extra_multi.end() || it3 != extra_equiv.end()) {
            std::printf("%-28s %-28s %-28s\n", it1 != s1.end() ? (it1++)->c_str() : "",
                        it2 != extra_multi.end() ? (it2++)->c_str() : "",
                        it3 != extra_equiv.end() ? (it3++)->c_str() : "");
        }
        std::printf("counts: single=%zu, +multiple=%zu, +equivalence=%zu\n", s1.size(),
                    extra_multi.size(), extra_equiv.size());
    };
    print_staged("learned invalid-state relations (FF-FF)", true);
    print_staged("learned Gate-FF relations", false);

    // Tie summary (Section 3.2 on this circuit).
    const core::LearnResult r = api::Session(netlist::Netlist(nl)).learn();
    std::printf("tie gates:");
    for (const GateId g : r.ties.tied_gates()) {
        std::printf(" %s=%c@%u", nl.name_of(g).c_str(), logic::to_char(r.ties.value(g)),
                    r.ties.cycle(g));
    }
    std::printf("\n");
}

void BM_LearnFig1(benchmark::State& state) {
    // Design compiled once: the timed loop measures learn() only.
    const api::DesignPtr design = api::DesignBuilder(workload::fig1_analog()).build();
    for (auto _ : state) {
        const core::LearnResult r = api::Session(design).learn();
        benchmark::DoNotOptimize(r.stats.ff_ff_relations);
    }
}
BENCHMARK(BM_LearnFig1);

void BM_LearnFig2(benchmark::State& state) {
    const api::DesignPtr design = api::DesignBuilder(workload::fig2_analog()).build();
    for (auto _ : state) {
        const core::LearnResult r = api::Session(design).learn();
        benchmark::DoNotOptimize(r.stats.ff_ff_relations);
    }
}
BENCHMARK(BM_LearnFig2);

}  // namespace

int main(int argc, char** argv) {
    const Netlist fig1 = workload::fig1_analog();
    print_table1(fig1, 4);
    print_table2(fig1);
    const Netlist fig2 = workload::fig2_analog();
    print_table1(fig2, 3);
    print_table2(fig2);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
