// Learning and ATPG determinism goldens.
//
// The CSR/zero-allocation refactor of the learning hot path is required to
// be behaviour-preserving: learn() must produce exactly the relations, ties,
// and equivalences the vector-of-vectors implementation produced. These
// goldens were recorded from the pre-refactor implementation (seed commit
// built with the same compiler) and pin both the summary counts and an
// order-independent FNV-1a hash over the canonical relation set, so any
// change to what is learned — not just how fast — fails here.
//
// The ATPG campaign digests below extend the same discipline to the
// generation/fault-simulation side: they were recorded from the
// Netlist-walking FaultSimulator and Engine immediately before the port onto
// the shared Topology, so the port is provably bit-identical (statuses and
// every generated test vector included).
//
// The same goldens are asserted at 1, 2, and 8 worker threads: the exec
// subsystem's contract is that N-thread learning, fault simulation, and
// ATPG are bit-identical to the serial schedule (ordered speculative
// commit), so every digest below must be thread-count-invariant.

#include "api/session.hpp"
#include "core/seq_learn.hpp"
#include "test_helpers.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/paper_circuits.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

namespace seqlearn::core {
namespace {

struct Golden {
    std::size_t relations;
    std::size_t ties_comb;
    std::size_t ties_seq;
    std::size_t equiv_classes;
    std::size_t multi_relations;
    std::size_t multi_ties;
    std::uint64_t relation_hash;
};

// The order-independent relation digest now lives in the library
// (core::relation_hash) so the serving protocol reports the very value
// these goldens pin; the unqualified calls below resolve to it.
//
// Three hashes were re-recorded when ImplicationDB::add() was fixed to
// apply the keep-earliest-frame rule to both stored directions of a
// duplicate relation: the relation sets are unchanged (every count below
// is), but a relation re-learned at an earlier frame used to keep the
// stale frame on its contrapositive edge, and the canonical frame the
// hash mixes in could be either copy depending on orientation. Binary
// snapshots round-trip the full adjacency, so the two directions must
// agree.

void expect_golden(const netlist::Netlist& nl, const Golden& want) {
    // The matrix spans the exec subsystem's two axes: worker threads
    // (ordered speculative commit) and 64-lane stem/target batching
    // (batch_lanes 0 = scalar event-driven runs, 6 = tiny 3-stem batches
    // that retire and re-form constantly, 64 = full-width). Every cell must
    // reproduce the same goldens bit for bit.
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const std::size_t lanes : {std::size_t{0}, std::size_t{6}, std::size_t{64}}) {
            if (lanes == 6 && threads != 1) continue;  // narrow batches: 1-thread only
            LearnConfig cfg;
            cfg.threads = threads;
            cfg.batch_lanes = lanes;
            const LearnResult r = testing::learn(nl, cfg);
            const auto ctx = [&] {
                return ::testing::Message() << "threads=" << threads << " lanes=" << lanes;
            };
            EXPECT_EQ(r.db.size(), want.relations) << ctx();
            EXPECT_EQ(r.stats.ties_combinational, want.ties_comb) << ctx();
            EXPECT_EQ(r.stats.ties_sequential, want.ties_seq) << ctx();
            EXPECT_EQ(r.stats.equiv_classes, want.equiv_classes) << ctx();
            EXPECT_EQ(r.stats.multi_relations, want.multi_relations) << ctx();
            EXPECT_EQ(r.stats.multi_ties, want.multi_ties) << ctx();
            EXPECT_EQ(relation_hash(r.db), want.relation_hash) << ctx();
        }
    }
}

TEST(LearnDeterminism, PaperFigure1Analog) {
    expect_golden(workload::fig1_analog(),
                  {32, 1, 1, 6, 4, 1, 17514152826575598517ULL});
}

TEST(LearnDeterminism, PaperFigure2Analog) {
    expect_golden(workload::fig2_analog(),
                  {13, 0, 0, 2, 1, 0, 6364108071828642612ULL});
}

TEST(LearnDeterminism, S27) {
    expect_golden(workload::suite_circuit("s27"),
                  {5, 0, 0, 2, 2, 0, 10935399525861348907ULL});
}

TEST(LearnDeterminism, RandomCircuitSeeds) {
    expect_golden(testing::random_circuit(7, 6, 5, 30),
                  {20, 0, 0, 6, 1, 0, 7720611312974261774ULL});
    expect_golden(testing::random_circuit(21, 6, 5, 30),
                  {40, 2, 13, 6, 2, 13, 5824401802024623481ULL});
    expect_golden(testing::random_circuit(99, 6, 5, 30),
                  {23, 2, 0, 2, 0, 0, 1161416052004708422ULL});
}

// FNV-1a digest of a full campaign run through the Session facade: every
// fault status in list order, then every generated test vector. Sensitive to
// any change in search order, windowing, validation, or simulation.
std::uint64_t campaign_digest(const netlist::Netlist& nl, atpg::LearnMode mode,
                              std::uint32_t backtrack_limit, unsigned threads) {
    api::SessionConfig scfg;
    scfg.threads = threads;
    api::Session session(nl, std::move(scfg));
    session.learn();  // all modes share one learned result, as the paper does
    atpg::AtpgConfig cfg;
    cfg.mode = mode;
    cfg.backtrack_limit = backtrack_limit;
    const api::AtpgReport& report = session.atpg(cfg);
    return api::campaign_digest(report);
}

TEST(AtpgDeterminism, CampaignDigestsMatchPrePortGoldens) {
    struct Golden {
        const char* circuit;
        atpg::LearnMode mode;
        std::uint32_t backtrack_limit;
        std::uint64_t digest;
    };
    // Recorded from the pre-Topology-port engines (see header comment).
    const Golden goldens[] = {
        {"s27", atpg::LearnMode::None, 100, 18111582773122034168ULL},
        {"s27", atpg::LearnMode::ForbiddenValue, 100, 18111582773122034168ULL},
        {"s27", atpg::LearnMode::KnownValue, 100, 18111582773122034168ULL},
        {"fig1x", atpg::LearnMode::ForbiddenValue, 200, 10825201447926129470ULL},
        {"rt510a", atpg::LearnMode::ForbiddenValue, 30, 8688592942972918127ULL},
    };
    for (const Golden& g : goldens) {
        const netlist::Netlist nl = workload::suite_circuit(g.circuit);
        for (const unsigned threads : {1u, 2u, 8u}) {
            EXPECT_EQ(campaign_digest(nl, g.mode, g.backtrack_limit, threads), g.digest)
                << g.circuit << " mode " << static_cast<int>(g.mode)
                << " threads " << threads;
        }
    }
}

// K concurrent Sessions over ONE shared immutable Design must each produce
// the exact serial results: every thread compiles nothing (the Design owns
// the only Topology), learns independently, and runs a full campaign; all
// learn hashes and campaign digests must equal the single-session golden.
// This is the core thread-safety contract of the Design/Session split, and
// it runs under the ThreadSanitizer CI job.
std::uint64_t session_campaign_digest(api::Session& session, atpg::LearnMode mode,
                                      std::uint32_t backtrack_limit) {
    atpg::AtpgConfig cfg;
    cfg.mode = mode;
    cfg.backtrack_limit = backtrack_limit;
    const api::AtpgReport& report = session.atpg(cfg);
    return api::campaign_digest(report);
}

TEST(AtpgDeterminism, ConcurrentSessionsOverSharedDesignMatchSerial) {
    struct Case {
        const char* circuit;
        atpg::LearnMode mode;
        std::uint32_t backtrack_limit;
    };
    const Case cases[] = {
        {"s27", atpg::LearnMode::ForbiddenValue, 100},
        {"fig1x", atpg::LearnMode::ForbiddenValue, 200},
    };
    for (const Case& c : cases) {
        const api::DesignPtr design =
            api::DesignBuilder(workload::suite_circuit(c.circuit)).build();
        // Serial golden: one Session, one thread.
        api::SessionConfig serial_cfg;
        serial_cfg.threads = 1;
        api::Session serial(design, std::move(serial_cfg));
        const std::uint64_t learn_golden = relation_hash(serial.learn().db);
        const std::uint64_t campaign_golden =
            session_campaign_digest(serial, c.mode, c.backtrack_limit);

        for (const unsigned k : {1u, 2u, 8u}) {
            std::vector<std::uint64_t> learn_hashes(k, 0);
            std::vector<std::uint64_t> campaign_digests(k, 0);
            std::vector<std::thread> threads;
            threads.reserve(k);
            for (unsigned t = 0; t < k; ++t) {
                threads.emplace_back([&, t] {
                    api::SessionConfig cfg;
                    cfg.threads = 1;
                    api::Session session(design, std::move(cfg));
                    learn_hashes[t] = relation_hash(session.learn().db);
                    campaign_digests[t] =
                        session_campaign_digest(session, c.mode, c.backtrack_limit);
                });
            }
            for (std::thread& t : threads) t.join();
            for (unsigned t = 0; t < k; ++t) {
                EXPECT_EQ(learn_hashes[t], learn_golden)
                    << c.circuit << " session " << t << " of " << k;
                EXPECT_EQ(campaign_digests[t], campaign_golden)
                    << c.circuit << " session " << t << " of " << k;
            }
        }
    }
}

// The same concurrency contract with a shared LearnedSnapshot: the learning
// producer's result is frozen into the Design, and K concurrent consumer
// Sessions run campaigns straight off the snapshot (no learning at all) —
// digests must match a serial session that learned locally.
TEST(AtpgDeterminism, ConcurrentSessionsSharingOneLearnedSnapshot) {
    // fig1x keeps this affordable under ThreadSanitizer (rt510a-sized
    // campaigns push the TSan job past its budget; the serial rt510a digest
    // is already pinned by CampaignDigestsMatchPrePortGoldens above).
    const netlist::Netlist nl = workload::suite_circuit("fig1x");
    api::SessionConfig pcfg;
    pcfg.threads = 1;
    api::Session producer(netlist::Netlist(nl), std::move(pcfg));
    const std::uint64_t golden = session_campaign_digest(
        producer, atpg::LearnMode::ForbiddenValue, 200);

    const api::DesignPtr design = api::DesignBuilder(netlist::Netlist(nl))
                                      .learned(producer.freeze_learned())
                                      .build();
    for (const unsigned k : {2u, 8u}) {
        std::vector<std::uint64_t> digests(k, 0);
        std::vector<std::thread> threads;
        threads.reserve(k);
        for (unsigned t = 0; t < k; ++t) {
            threads.emplace_back([&, t] {
                api::SessionConfig cfg;
                cfg.threads = 1;
                api::Session session(design, std::move(cfg));
                digests[t] = session_campaign_digest(session,
                                                     atpg::LearnMode::ForbiddenValue, 200);
            });
        }
        for (std::thread& t : threads) t.join();
        for (unsigned t = 0; t < k; ++t)
            EXPECT_EQ(digests[t], golden) << "session " << t << " of " << k;
    }
}

// Fault-simulation validation through the Session must report identical
// coverage at every thread count (drop_detected statuses are a pure union
// merged in fault-index order).
TEST(FaultSimDeterminism, ValidationMatchesAcrossThreadCounts) {
    const netlist::Netlist nl = workload::suite_circuit("rt510a");
    std::optional<api::FaultSimReport> serial;
    for (const unsigned threads : {1u, 2u, 8u}) {
        api::SessionConfig scfg;
        scfg.threads = threads;
        api::Session session(nl, std::move(scfg));
        atpg::AtpgConfig acfg;
        acfg.mode = atpg::LearnMode::ForbiddenValue;
        acfg.backtrack_limit = 30;
        session.atpg(acfg);
        const api::FaultSimReport report = session.fault_sim();
        if (!serial) {
            serial = report;
            continue;
        }
        EXPECT_EQ(report.total, serial->total) << "threads=" << threads;
        EXPECT_EQ(report.detected, serial->detected) << "threads=" << threads;
        EXPECT_EQ(report.sequences, serial->sequences) << "threads=" << threads;
        EXPECT_EQ(report.fault_coverage, serial->fault_coverage) << "threads=" << threads;
    }
}

// Full-result agreement between the scalar and 64-lane batched learning
// paths on a circuit large enough to exercise batch re-forming after tie
// discoveries (the goldens above pin small circuits; this pins every tie
// value, proof cycle, and the whole relation set on a bigger one).
TEST(LearnDeterminism, BatchedAndScalarPathsAgree) {
    const netlist::Netlist nl =
        workload::generate(workload::iscas_like("bdet", 24, 260, 9));
    LearnConfig scalar_cfg;
    scalar_cfg.threads = 1;
    scalar_cfg.batch_lanes = 0;
    const LearnResult a = testing::learn(nl, scalar_cfg);
    LearnConfig batch_cfg;
    batch_cfg.threads = 1;
    batch_cfg.batch_lanes = 64;
    const LearnResult b = testing::learn(nl, batch_cfg);
    EXPECT_GT(a.ties.count(), 0u);  // otherwise the re-forming path is idle
    EXPECT_EQ(a.db.size(), b.db.size());
    EXPECT_EQ(relation_hash(a.db), relation_hash(b.db));
    EXPECT_EQ(a.ties.dense(), b.ties.dense());
    EXPECT_EQ(a.ties.dense_cycles(), b.ties.dense_cycles());
    EXPECT_EQ(a.stats.multi_relations, b.stats.multi_relations);
    EXPECT_EQ(a.stats.multi_ties, b.stats.multi_ties);
    EXPECT_EQ(a.stats.stems_processed, b.stats.stems_processed);
}

// Two learn() invocations on the same circuit must agree exactly (the
// scratch-buffer reuse inside the passes carries no state across runs).
TEST(LearnDeterminism, RepeatedRunsIdentical) {
    const netlist::Netlist nl = testing::random_circuit(55, 6, 5, 40);
    const LearnResult a = testing::learn(nl);
    const LearnResult b = testing::learn(nl);
    EXPECT_EQ(a.db.size(), b.db.size());
    EXPECT_EQ(relation_hash(a.db), relation_hash(b.db));
    EXPECT_EQ(a.ties.count(), b.ties.count());
}

}  // namespace
}  // namespace seqlearn::core
