// Tests for the workload module: generator validity and determinism, the
// paper-circuit analogs (each must exhibit its documented phenomena),
// forward retiming (behaviour preservation + density-of-encoding drop),
// and the FIRE baseline's soundness.

#include "core/invalid_state.hpp"
#include "core/seq_learn.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/topology.hpp"
#include "netlist/builder.hpp"
#include "sim/comb_engine.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/fires.hpp"
#include "workload/paper_circuits.hpp"
#include "workload/reachability.hpp"
#include "workload/retime.hpp"
#include "workload/suite.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace seqlearn::workload {
namespace {

using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

sim::InputSequence random_sequence(const Netlist& nl, std::size_t len, util::Rng& rng) {
    sim::InputSequence seq(len, sim::InputFrame(nl.inputs().size(), Val3::X));
    for (auto& frame : seq) {
        for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
    }
    return seq;
}

TEST(Generator, DeterministicAndValid) {
    GenParams p;
    p.seed = 42;
    p.n_ffs = 12;
    p.n_gates = 80;
    const Netlist a = generate(p);
    const Netlist b = generate(p);
    EXPECT_EQ(a.size(), b.size());
    for (GateId id = 0; id < a.size(); ++id) {
        EXPECT_EQ(a.type(id), b.type(id));
        EXPECT_EQ(a.name_of(id), b.name_of(id));
    }
    EXPECT_NO_THROW(a.validate());
    EXPECT_GE(a.counts().flip_flops + a.counts().latches, 12u);
}

TEST(Generator, HitsRequestedSizes) {
    const GenParams p = iscas_like("x", 100, 1000, 7);
    const Netlist nl = generate(p);
    const auto c = nl.counts();
    // Shadows keep the total register count near the published number.
    EXPECT_NEAR(static_cast<double>(c.flip_flops + c.latches), 100.0, 15.0);
    EXPECT_NEAR(static_cast<double>(c.combinational), 1000.0, 60.0);
}

TEST(Generator, DecorationProducesDomainsLatchesAndSetReset) {
    GenParams p;
    p.seed = 5;
    p.n_ffs = 40;
    p.n_gates = 200;
    p.clock_domains = 3;
    p.latch_fraction = 0.2;
    p.sr_fraction = 0.3;
    const Netlist nl = generate(p);
    std::size_t latches = 0, sr = 0;
    std::vector<bool> domain_seen(3, false);
    for (const GateId ff : nl.seq_elements()) {
        latches += nl.type(ff) == netlist::GateType::Dlatch;
        sr += nl.seq_attrs(ff).sr_unconstrained;
        domain_seen[nl.seq_attrs(ff).clock_id % 3] = true;
    }
    EXPECT_GT(latches, 0u);
    EXPECT_GT(sr, 0u);
    EXPECT_TRUE(domain_seen[0] && domain_seen[1] && domain_seen[2]);
}

TEST(Generator, ShadowRegistersCreateLearnableRelations) {
    GenParams p;
    p.seed = 11;
    p.n_inputs = 4;
    p.n_ffs = 8;
    p.n_gates = 40;
    p.shadow_ff_fraction = 0.5;
    const Netlist nl = generate(p);
    const core::LearnResult r = testing::learn(nl);
    EXPECT_GT(r.stats.ff_ff_relations, 0u);
}

// --- Paper circuits -----------------------------------------------------------

TEST(PaperCircuits, S27Shape) {
    const Netlist nl = s27();
    const auto c = nl.counts();
    EXPECT_EQ(c.inputs, 4u);
    EXPECT_EQ(c.flip_flops, 3u);
    EXPECT_EQ(c.combinational, 10u);
    EXPECT_EQ(c.outputs, 1u);
}

TEST(PaperCircuits, Fig1TieGateG3) {
    const Netlist nl = fig1_analog();
    const core::LearnResult r = testing::learn(nl);
    EXPECT_EQ(r.ties.value(nl.find("G3")), Val3::Zero);
    EXPECT_EQ(r.ties.cycle(nl.find("G3")), 0u);
}

TEST(PaperCircuits, Fig1SequentialTieG15ByMultipleNode) {
    const Netlist nl = fig1_analog();
    core::LearnConfig no_multi;
    no_multi.multiple_node = false;
    EXPECT_FALSE(testing::learn(nl, no_multi).ties.is_tied(nl.find("G15")));
    const core::LearnResult full = testing::learn(nl);
    EXPECT_EQ(full.ties.value(nl.find("G15")), Val3::Zero);
    EXPECT_GE(full.ties.cycle(nl.find("G15")), 1u);
}

TEST(PaperCircuits, Fig1SingleNodeInvalidStateRelation) {
    const Netlist nl = fig1_analog();
    core::LearnConfig no_multi;
    no_multi.multiple_node = false;
    no_multi.use_equivalences = false;
    const core::LearnResult r = testing::learn(nl, no_multi);
    EXPECT_TRUE(r.db.implies({nl.find("F4"), Val3::One}, {nl.find("F6"), Val3::One}));
}

TEST(PaperCircuits, Fig1EquivalenceOnlyRelations) {
    const Netlist nl = fig1_analog();
    const core::Literal f4{nl.find("F4"), Val3::One};
    const core::Literal f5{nl.find("F5"), Val3::One};
    core::LearnConfig no_eq;
    no_eq.use_equivalences = false;
    EXPECT_FALSE(testing::learn(nl, no_eq).db.implies(f4, f5));
    EXPECT_TRUE(testing::learn(nl).db.implies(f4, f5));
}

TEST(PaperCircuits, Fig2MultipleNodeRelation) {
    const Netlist nl = fig2_analog();
    const core::Literal g9_0{nl.find("G9"), Val3::Zero};
    const core::Literal f2_0{nl.find("F2"), Val3::Zero};
    core::LearnConfig no_multi;
    no_multi.multiple_node = false;
    EXPECT_FALSE(testing::learn(nl, no_multi).db.implies(g9_0, f2_0));
    EXPECT_TRUE(testing::learn(nl).db.implies(g9_0, f2_0));
}

// Every learned same-frame relation on fig1/fig2 must hold exhaustively.
TEST(PaperCircuits, LearnedRelationsExhaustivelySound) {
    for (const char* name : {"fig1x", "fig2x"}) {
        const Netlist nl = suite_circuit(name);
        core::LearnConfig cfg;
        cfg.max_frames = 6;
        const core::LearnResult r = testing::learn(nl, cfg);
        const sim::CombEngine engine(nl);
        const auto seq = nl.seq_elements();
        const auto inputs = nl.inputs();
        const std::uint64_t n_inputs = 1ULL << inputs.size();
        for (const core::Relation& rel : r.db.relations()) {
            const std::vector<bool> valid = image_set(nl, rel.frame);
            for (std::uint64_t s = 0; s < (1ULL << seq.size()); ++s) {
                if (!valid[s]) continue;
                for (std::uint64_t u = 0; u < n_inputs; ++u) {
                    std::vector<Val3> vals(nl.size(), Val3::X);
                    for (std::size_t i = 0; i < seq.size(); ++i)
                        vals[seq[i]] = (s >> i) & 1 ? Val3::One : Val3::Zero;
                    for (std::size_t i = 0; i < inputs.size(); ++i)
                        vals[inputs[i]] = (u >> i) & 1 ? Val3::One : Val3::Zero;
                    engine.eval(vals);
                    if (vals[rel.lhs.gate] == rel.lhs.value) {
                        ASSERT_EQ(vals[rel.rhs.gate], rel.rhs.value)
                            << name << ": " << to_string(nl, rel);
                    }
                }
            }
        }
    }
}

// --- Retiming -------------------------------------------------------------------

TEST(Retime, PreservesObservableBehaviour) {
    GenParams p;
    p.seed = 3;
    p.n_inputs = 4;
    p.n_ffs = 6;
    p.n_gates = 30;
    p.shadow_ff_fraction = 0.0;
    const Netlist base = generate(p);
    RetimeStats st;
    const Netlist rt = forward_retime(base, 4, 9, &st);
    EXPECT_GT(st.moves_applied, 0u);
    EXPECT_GT(st.registers_after, st.registers_before);

    util::Rng rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        const auto seq = random_sequence(base, 8, rng);
        const auto a = sim::simulate_sequence(base, seq);
        const auto b = sim::simulate_sequence(rt, seq);
        for (std::size_t t = 0; t < seq.size(); ++t) {
            for (std::size_t o = 0; o < a.outputs[t].size(); ++o) {
                // The retimed circuit may be better defined, never different.
                if (a.outputs[t][o] != Val3::X) {
                    EXPECT_EQ(b.outputs[t][o], a.outputs[t][o])
                        << "frame " << t << " output " << o;
                }
            }
        }
    }
}

TEST(Retime, LowersDensityOfEncoding) {
    GenParams p;
    p.seed = 21;
    p.n_inputs = 3;
    p.n_ffs = 4;
    p.n_gates = 18;
    p.shadow_ff_fraction = 0.0;
    const Netlist base = generate(p);
    RetimeStats st;
    const Netlist rt = forward_retime(base, 3, 5, &st);
    if (st.moves_applied == 0 || rt.seq_elements().size() > 16) GTEST_SKIP();
    const double before = core::density_of_encoding(base, 16);
    const double after = core::density_of_encoding(rt, 16);
    EXPECT_LT(after, before);
}

TEST(Retime, LearningFindsTheInvalidStates) {
    const Netlist rt = suite_circuit("rt510a");
    const core::LearnResult r = testing::learn(rt);
    EXPECT_GT(r.stats.ff_ff_relations, 0u);
    const core::InvalidStateChecker chk(rt, r.db);
    EXPECT_GT(chk.size(), 0u);
}

// --- FIRE baseline ---------------------------------------------------------------

TEST(Fires, FindsClassicRedundancy) {
    // g = AND(a, NOT a) feeding an OR: g s-a-0 is undetectable; FIRE sees it
    // because the stem `a` implies g=0 under both values.
    netlist::NetlistBuilder b("fire");
    b.input("a").input("c");
    b.gate(netlist::GateType::Not, "na", {"a"});
    b.gate(netlist::GateType::And, "g", {"a", "na"});
    b.gate(netlist::GateType::Or, "y", {"g", "c"});
    b.output("y");
    const Netlist nl = b.build();
    const auto universe = fault::fault_universe(nl);
    const FiresResult res = fires_untestable(nl, universe);
    const fault::Fault g0{nl.find("g"), fault::kOutputPin, Val3::Zero};
    EXPECT_TRUE(std::find(res.untestable.begin(), res.untestable.end(), g0) !=
                res.untestable.end());
}

// Soundness: every FIRE claim must survive exhaustive search on tiny
// circuits (all binary sequences up to 4 frames).
TEST(Fires, ClaimsAreExhaustivelySound) {
    for (const std::uint64_t seed : {2ULL, 9ULL, 27ULL, 41ULL}) {
        GenParams p;
        p.seed = seed;
        p.n_inputs = 2;
        p.n_ffs = 3;
        p.n_gates = 12;
        p.name = "tiny";
        const Netlist nl = generate(p);
        const auto universe = fault::fault_universe(nl);
        const FiresResult res = fires_untestable(nl, universe);
        const netlist::Topology topo(nl);
        fault::FaultSimulator fsim(topo);
        for (const fault::Fault& f : res.untestable) {
            bool detectable = false;
            const std::size_t m = nl.inputs().size();
            for (std::size_t len = 1; len <= 4 && !detectable; ++len) {
                for (std::uint64_t bits = 0; bits < (1ULL << (m * len)); ++bits) {
                    sim::InputSequence seq(len, sim::InputFrame(m, Val3::X));
                    for (std::size_t t = 0; t < len; ++t)
                        for (std::size_t i = 0; i < m; ++i)
                            seq[t][i] = (bits >> (t * m + i)) & 1 ? Val3::One : Val3::Zero;
                    if (fsim.detects(seq, f)) {
                        detectable = true;
                        break;
                    }
                }
            }
            EXPECT_FALSE(detectable) << "seed " << seed << ": " << to_string(nl, f);
        }
    }
}

// --- Suite -----------------------------------------------------------------------

TEST(Suite, AllNamesBuildAndValidate) {
    for (const auto& name : table3_names()) {
        if (name == "ind60k" || name == "ind250k" || name == "gen38417" ||
            name == "gen38584") {
            continue;  // big ones are exercised by the benches
        }
        const Netlist nl = suite_circuit(name);
        EXPECT_NO_THROW(nl.validate()) << name;
        EXPECT_EQ(nl.name(), name == "fig1x"   ? "fig1_analog"
                             : name == "fig2x" ? "fig2_analog"
                             : name.substr(0, 2) == "rt" ? nl.name()
                                                         : name)
            << name;
    }
    EXPECT_THROW(suite_circuit("nope"), std::invalid_argument);
}

TEST(Suite, DeterministicAcrossCalls) {
    const Netlist a = suite_circuit("gen1423");
    const Netlist b = suite_circuit("gen1423");
    ASSERT_EQ(a.size(), b.size());
    for (GateId id = 0; id < a.size(); id += 37) EXPECT_EQ(a.name_of(id), b.name_of(id));
}

TEST(Suite, RetimedFamilyHasExtraRegisters) {
    for (const char* name : {"rt510a", "rt510b", "rt832"}) {
        const Netlist nl = suite_circuit(name);
        EXPECT_GT(nl.seq_elements().size(), 13u) << name;
    }
}

}  // namespace
}  // namespace seqlearn::workload
