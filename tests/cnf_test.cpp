// The CNF timeframe-expansion backend: CDCL solver units, encoder parity
// against the reference simulators, SAT-mined learning soundness, backend
// routing, and governance.
//
// What is pinned here:
//   * The embedded CDCL solver is correct on the classics (unit chains,
//     pigeonhole UNSAT, incremental assumptions) and bit-deterministic:
//     two fresh solvers on the same clause set replay identical statistics.
//   * BinaryUnroller models ARE executions: any satisfying model decodes to
//     an (initial state, input sequence) pair whose reference simulation
//     reproduces every gate value at every frame.
//   * FaultMiter verdicts agree with the simulator: Sat witnesses replay
//     through FaultSimulator::detects, and Untestable verdicts survive an
//     exhaustive oracle over every binary sequence within the frame bound.
//   * SAT-mined ties/relations never contradict frame-simulation learning —
//     cross-checked structurally (merged TieSet never flips a value) and
//     empirically (random binary executions obey every mined fact).
//   * Governance: a tripped budget surfaces as Stopped/DeadlineExceeded with
//     the solver state intact — the same solve completes afterwards.
//   * Backend::Sat / Backend::Auto campaigns leave no fault merely Aborted
//     (every target gets a verdict) and are thread-count invariant.

#include "cnf/dispatch.hpp"
#include "cnf/encoder.hpp"
#include "cnf/sat_learn.hpp"
#include "cnf/solver.hpp"

#include "atpg/atpg_loop.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/builder.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace seqlearn::cnf {
namespace {

using fault::Fault;
using fault::kOutputPin;
using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

/// Truth of literal `l` in the last model of `s`.
bool lit_true(const Solver& s, Lit l) { return s.model_value(l.var()) != l.neg(); }

// --- CDCL units --------------------------------------------------------------

TEST(CdclSolver, UnitChainPropagatesToSat) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a)}));
    ASSERT_TRUE(s.add_clause({neg(a), pos(b)}));
    ASSERT_TRUE(s.add_clause({neg(b), pos(c)}));
    const SolveResult r = s.solve();
    ASSERT_EQ(r.status, SolveStatus::Sat);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
    EXPECT_TRUE(s.model_value(c));
    EXPECT_TRUE(r.run.ok());
}

TEST(CdclSolver, FailedLiteralProbeFindsImpliedChain) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    ASSERT_TRUE(s.add_clause({neg(a), pos(b)}));
    ASSERT_TRUE(s.add_clause({neg(b), pos(c)}));
    std::vector<Lit> implied;
    const Lit assume[] = {pos(a)};
    ASSERT_TRUE(s.probe(assume, implied));
    EXPECT_NE(std::find(implied.begin(), implied.end(), pos(b)), implied.end());
    EXPECT_NE(std::find(implied.begin(), implied.end(), pos(c)), implied.end());

    // An assumption set propagation refutes: probe reports the conflict and
    // the solver stays usable.
    const Lit bad[] = {pos(a), neg(c)};
    EXPECT_FALSE(s.probe(bad, implied));
    EXPECT_EQ(s.solve().status, SolveStatus::Sat);
}

/// Pigeonhole clauses for `holes` + 1 pigeons into `holes` holes: the
/// classic polynomially-large, exponentially-hard UNSAT family.
void encode_pigeonhole(Solver& s, unsigned holes) {
    const unsigned pigeons = holes + 1;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p)
        for (Var& v : row) v = s.new_var();
    std::vector<Lit> clause;
    for (unsigned i = 0; i < pigeons; ++i) {
        clause.clear();
        for (unsigned h = 0; h < holes; ++h) clause.push_back(pos(p[i][h]));
        ASSERT_TRUE(s.add_clause(clause));
    }
    for (unsigned h = 0; h < holes; ++h)
        for (unsigned i = 0; i < pigeons; ++i)
            for (unsigned j = i + 1; j < pigeons; ++j)
                ASSERT_TRUE(s.add_clause({neg(p[i][h]), neg(p[j][h])}));
}

TEST(CdclSolver, PigeonholeIsUnsatThroughConflictLearning) {
    Solver s;
    encode_pigeonhole(s, 5);
    const SolveResult r = s.solve();
    EXPECT_EQ(r.status, SolveStatus::Unsat);
    // No polynomial-size resolution proof exists: the search must learn.
    EXPECT_GT(s.conflicts(), 0u);
    EXPECT_GT(s.decisions(), 0u);
}

TEST(CdclSolver, IncrementalAssumptionsDoNotPoisonTheFormula) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
    ASSERT_TRUE(s.add_clause({neg(a), pos(c)}));

    const Lit both_off[] = {neg(a), neg(b)};
    EXPECT_EQ(s.solve(both_off).status, SolveStatus::Unsat);

    // The Unsat above was assumption-local: the formula itself stays Sat,
    // and a different assumption set solves with the implied consequence.
    const Lit a_on[] = {pos(a)};
    const SolveResult r = s.solve(a_on);
    ASSERT_EQ(r.status, SolveStatus::Sat);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_TRUE(s.model_value(c));
    EXPECT_EQ(s.solve().status, SolveStatus::Sat);
}

TEST(CdclSolver, IdenticalInputsReplayIdenticalSearches) {
    Solver s1, s2;
    encode_pigeonhole(s1, 5);
    encode_pigeonhole(s2, 5);
    EXPECT_EQ(s1.solve().status, SolveStatus::Unsat);
    EXPECT_EQ(s2.solve().status, SolveStatus::Unsat);
    EXPECT_EQ(s1.conflicts(), s2.conflicts());
    EXPECT_EQ(s1.decisions(), s2.decisions());
    EXPECT_EQ(s1.propagations(), s2.propagations());
    EXPECT_EQ(s1.num_clauses(), s2.num_clauses());
}

TEST(CdclSolver, TrippedBudgetStopsWithStateIntact) {
    Solver s;
    encode_pigeonhole(s, 7);  // big enough to outlive one poll interval

    exec::BudgetSpec spec;
    spec.deadline = std::chrono::milliseconds(1);
    exec::Budget budget(spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // already expired
    s.set_governance(nullptr, &budget);
    const SolveResult stopped = s.solve();
    EXPECT_EQ(stopped.status, SolveStatus::Stopped);
    EXPECT_EQ(stopped.run.status, exec::RunStatus::DeadlineExceeded);

    // The stop lost nothing: ungoverned, the same solver finishes the
    // search (learned clauses from the aborted attempt are still valid).
    s.set_governance(nullptr, nullptr);
    EXPECT_EQ(s.solve().status, SolveStatus::Unsat);
}

// --- encoder parity against the reference simulator -------------------------

TEST(Unroller, ModelsDecodeToMatchingReferenceSimulations) {
    constexpr std::uint32_t kFrames = 4;
    for (const std::uint64_t seed : {5ULL, 9ULL, 17ULL}) {
        const Netlist nl = testing::random_circuit(seed, 3, 3, 12);
        const netlist::Topology topo(nl);
        Solver solver;
        BinaryUnroller unroller(topo, solver);
        unroller.encode(kFrames);

        const auto inputs = nl.inputs();
        const auto seq_elems = nl.seq_elements();
        util::Rng rng(seed * 1000 + 1);
        for (int trial = 0; trial < 4; ++trial) {
            // Pin every primary input of every frame to a random binary
            // value; the initial state stays free (the solver picks it).
            std::vector<Lit> assumptions;
            for (std::uint32_t t = 0; t < kFrames; ++t)
                for (const GateId in : inputs)
                    assumptions.push_back(unroller.lit(in, t, rng.chance(0.5)));
            ASSERT_EQ(solver.solve(assumptions).status, SolveStatus::Sat);

            sim::InputSequence seq(kFrames, sim::InputFrame(inputs.size()));
            for (std::uint32_t t = 0; t < kFrames; ++t)
                for (std::size_t i = 0; i < inputs.size(); ++i)
                    seq[t][i] = lit_true(solver, unroller.lit(inputs[i], t))
                                    ? Val3::One
                                    : Val3::Zero;
            std::vector<Val3> init(seq_elems.size());
            for (std::size_t i = 0; i < seq_elems.size(); ++i)
                init[i] = lit_true(solver, unroller.lit(seq_elems[i], 0)) ? Val3::One
                                                                          : Val3::Zero;

            const sim::SequenceResult ref = sim::simulate_sequence(nl, seq, &init);
            for (std::uint32_t t = 0; t < kFrames; ++t) {
                for (GateId g = 0; g < nl.size(); ++g) {
                    const Val3 want = ref.frames[t][g];
                    ASSERT_NE(want, Val3::X);  // binary sources: fully binary
                    EXPECT_EQ(lit_true(solver, unroller.lit(g, t)),
                              want == Val3::One)
                        << "seed " << seed << " trial " << trial << " gate " << g
                        << " frame " << t;
                }
            }
        }
    }
}

TEST(Miter, VerdictsAgreeWithTheExhaustiveOracle) {
    constexpr std::uint32_t kFrames = 3;
    for (const std::uint64_t seed : {4ULL, 23ULL, 37ULL}) {
        const Netlist nl = testing::random_circuit(seed, 2, 2, 8);
        const netlist::Topology topo(nl);
        fault::FaultSimulator fsim(topo);
        const std::size_t m = nl.inputs().size();
        for (const Fault& f : fault::fault_universe(nl)) {
            const CnfVerdict v =
                prove_fault(topo, f, kFrames, nullptr, nullptr, nullptr);
            ASSERT_NE(v.kind, CnfVerdict::Kind::Unknown);  // ungoverned run
            if (v.kind == CnfVerdict::Kind::Test) {
                // Every witness must replay through the independent
                // simulator — the same validation the campaign applies.
                EXPECT_TRUE(fsim.detects(v.test, f))
                    << "seed " << seed << ": " << to_string(nl, f);
                continue;
            }
            // Untestable within kFrames: no binary sequence of length
            // <= kFrames may detect the fault. Exhaustive cross-check.
            EXPECT_NE(v.proof, fault::UntestableProof::None);
            for (std::size_t len = 1; len <= kFrames; ++len) {
                for (std::uint64_t bits = 0; bits < (1ULL << (m * len)); ++bits) {
                    sim::InputSequence seq(len, sim::InputFrame(m, Val3::X));
                    for (std::size_t t = 0; t < len; ++t)
                        for (std::size_t i = 0; i < m; ++i)
                            seq[t][i] =
                                (bits >> (t * m + i)) & 1 ? Val3::One : Val3::Zero;
                    ASSERT_FALSE(fsim.detects(seq, f))
                        << "seed " << seed << ": " << to_string(nl, f)
                        << " claimed untestable but detected at len " << len;
                }
            }
        }
    }
}

// --- SAT learn mode ----------------------------------------------------------

TEST(SatLearn, MinedFactsNeverContradictFrameSimLearning) {
    for (const std::uint64_t seed : {3ULL, 14ULL, 59ULL}) {
        const Netlist nl = testing::random_circuit(seed, 3, 4, 14);

        core::LearnConfig base;
        base.max_frames = 3;  // shallow window: leave the SAT probes room
        const core::LearnResult plain = testing::learn(nl, base);

        core::LearnConfig with_sat = base;
        with_sat.sat_frames = 6;
        const core::LearnResult mined = testing::learn(nl, with_sat);
        ASSERT_TRUE(mined.outcome.ok());
        EXPECT_GT(mined.stats.sat_probes, 0u);

        // Structural: merging SAT facts can only add ties, never flip one
        // (TieSet::set throws on contradiction, so completing at all is
        // already a proof — assert the values line up anyway).
        for (GateId g = 0; g < nl.size(); ++g) {
            if (plain.ties.value(g) == Val3::X) continue;
            EXPECT_EQ(mined.ties.value(g), plain.ties.value(g)) << "gate " << g;
        }

        // Empirical: random binary executions from the all-X power-up state
        // must obey every mined tie and relation from its frame tag on.
        constexpr std::size_t kLen = 10;
        const std::size_t m = nl.inputs().size();
        util::Rng rng(seed * 77 + 5);
        for (int trial = 0; trial < 8; ++trial) {
            sim::InputSequence seq(kLen, sim::InputFrame(m));
            for (auto& fr : seq)
                for (auto& v : fr) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
            const sim::SequenceResult ref = sim::simulate_sequence(nl, seq);
            for (std::size_t t = 0; t < kLen; ++t) {
                for (GateId g = 0; g < nl.size(); ++g) {
                    const Val3 tie = mined.ties.value(g);
                    if (tie != Val3::X && t >= mined.ties.cycle(g) &&
                        ref.frames[t][g] != Val3::X) {
                        EXPECT_EQ(ref.frames[t][g], tie)
                            << "seed " << seed << " gate " << g << " frame " << t;
                    }
                }
                for (const core::Relation& r : mined.db.relations()) {
                    if (t < r.frame) continue;
                    if (ref.frames[t][r.lhs.gate] != r.lhs.value) continue;
                    if (ref.frames[t][r.rhs.gate] == Val3::X) continue;
                    EXPECT_EQ(ref.frames[t][r.rhs.gate], r.rhs.value)
                        << "seed " << seed << " frame " << t;
                }
            }
        }
    }
}

// --- backend routing through the campaign ------------------------------------

TEST(Backends, SatAndAutoLeaveNoFaultMerelyAborted) {
    for (const Backend backend : {Backend::Sat, Backend::Auto}) {
        const Netlist nl = testing::random_circuit(31, 3, 5, 16);
        const netlist::Topology topo(nl);
        fault::FaultList list(fault::fault_universe(nl));
        atpg::AtpgConfig cfg;
        cfg.backend = backend;
        cfg.sat_frames = 4;
        cfg.backtrack_limit = 2;  // starve frame-sim so aborts actually occur
        const atpg::AtpgOutcome out = atpg::run_atpg(topo, list, cfg);
        ASSERT_TRUE(out.run.ok());
        EXPECT_EQ(out.invalid_tests, 0u);
        EXPECT_GT(out.sat_targeted, 0u);
        // Acceptance: every frame-sim abort was re-dispatched to CNF and got
        // a definitive verdict; nothing is left merely Aborted.
        EXPECT_TRUE(list.aborted().empty()) << backend_name(backend);
        // Every bounded proof carries its frame bound in the records.
        for (const auto& rec : out.untestable_records) {
            if (rec.proof == fault::UntestableProof::BoundedCnf)
                EXPECT_EQ(rec.frames, cfg.sat_frames);
        }
    }
}

TEST(Backends, CampaignsAreThreadCountInvariant) {
    const Netlist nl = testing::random_circuit(47, 3, 4, 18);
    const netlist::Topology topo(nl);
    for (const Backend backend : {Backend::Sat, Backend::Auto}) {
        std::vector<std::vector<fault::FaultStatus>> statuses;
        std::vector<std::size_t> test_counts;
        for (const unsigned threads : {1u, 2u, 8u}) {
            fault::FaultList list(fault::fault_universe(nl));
            atpg::AtpgConfig cfg;
            cfg.backend = backend;
            cfg.sat_frames = 4;
            cfg.backtrack_limit = 5;
            cfg.threads = threads;
            const atpg::AtpgOutcome out = atpg::run_atpg(topo, list, cfg);
            ASSERT_TRUE(out.run.ok());
            std::vector<fault::FaultStatus> st(list.size());
            for (std::size_t i = 0; i < list.size(); ++i) st[i] = list.status(i);
            statuses.push_back(std::move(st));
            test_counts.push_back(out.tests.size());
        }
        EXPECT_EQ(statuses[0], statuses[1]) << backend_name(backend);
        EXPECT_EQ(statuses[0], statuses[2]) << backend_name(backend);
        EXPECT_EQ(test_counts[0], test_counts[1]) << backend_name(backend);
        EXPECT_EQ(test_counts[0], test_counts[2]) << backend_name(backend);
    }
}

TEST(Backends, ProveFaultHonoursADeadlineBudget) {
    // A deliberately expired budget: the verdict must be Unknown with the
    // DeadlineExceeded outcome — never a hang, never a throw.
    const Netlist nl = testing::random_circuit(8, 3, 4, 20);
    const netlist::Topology topo(nl);
    exec::BudgetSpec spec;
    spec.deadline = std::chrono::milliseconds(1);
    exec::Budget budget(spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    bool saw_unknown = false;
    for (const Fault& f : fault::fault_universe(nl)) {
        const CnfVerdict v = prove_fault(topo, f, 8, nullptr, nullptr, &budget);
        if (v.kind == CnfVerdict::Kind::Unknown) {
            EXPECT_EQ(v.run.status, exec::RunStatus::DeadlineExceeded);
            saw_unknown = true;
        }
    }
    // At least the harder faults must have hit the (expired) deadline; tiny
    // cones may legitimately finish before the first governance poll.
    EXPECT_TRUE(saw_unknown);
}

}  // namespace
}  // namespace seqlearn::cnf
