#pragma once
// Shared helpers for the test suites: a one-shot learn() through the
// supported facade, a small random sequential circuit generator, and
// exhaustive image-set computation used as the soundness oracle for learned
// relations and ties.

#include "api/session.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "sim/comb_engine.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

#include <string>
#include <vector>

namespace seqlearn::testing {

using logic::Val3;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

/// One-shot learning for tests: compile a private Design from a copy of
/// `nl`, run the full pipeline through api::Session (the supported entry
/// point) and return the result by value.
inline core::LearnResult learn(const Netlist& nl, const core::LearnConfig& cfg = {}) {
    return api::Session(Netlist(nl)).learn(cfg);
}

/// Build a random sequential circuit: `n_in` inputs, `n_ff` flip-flops,
/// `n_gate` combinational gates wired to random earlier signals; every FF's
/// D input is a random signal; a few random signals become outputs.
inline Netlist random_circuit(std::uint64_t seed, std::size_t n_in, std::size_t n_ff,
                              std::size_t n_gate) {
    util::Rng rng(seed);
    netlist::NetlistBuilder b(util::format("rand_%llu", static_cast<unsigned long long>(seed)));
    std::vector<std::string> signals;
    for (std::size_t i = 0; i < n_in; ++i) {
        b.input(util::format("i%zu", i));
        signals.push_back(util::format("i%zu", i));
    }
    std::vector<std::string> ff_names;
    for (std::size_t i = 0; i < n_ff; ++i) {
        ff_names.push_back(util::format("f%zu", i));
        signals.push_back(ff_names.back());
    }
    const GateType kinds[] = {GateType::And,  GateType::Nand, GateType::Or,  GateType::Nor,
                              GateType::Xor,  GateType::Xnor, GateType::Not, GateType::Buf,
                              GateType::And,  GateType::Or,   GateType::Nand, GateType::Nor};
    std::vector<std::string> gate_names;
    for (std::size_t i = 0; i < n_gate; ++i) {
        const GateType t = kinds[rng.below(std::size(kinds))];
        const std::string name = util::format("g%zu", i);
        const std::size_t arity =
            (t == GateType::Not || t == GateType::Buf) ? 1 : 2 + rng.below(2);
        std::vector<std::string> fan;
        for (std::size_t a = 0; a < arity; ++a)
            fan.push_back(signals[rng.below(signals.size())]);
        b.gate(t, name, fan);
        signals.push_back(name);
        gate_names.push_back(name);
    }
    for (std::size_t i = 0; i < n_ff; ++i) {
        // D input: any signal, biased toward gates so state feedback exists.
        const std::string& d = gate_names.empty() || rng.chance(0.2)
                                   ? signals[rng.below(n_in + n_ff)]
                                   : gate_names[rng.below(gate_names.size())];
        b.dff(ff_names[i], d);
    }
    // A handful of observation points.
    for (std::size_t i = 0; i < std::min<std::size_t>(3, signals.size()); ++i) {
        b.output(signals[signals.size() - 1 - i]);
    }
    return b.build();
}

/// States with at least `depth` predecessor frames: Image^depth(AllStates),
/// inputs free at every step. Indexed by the packed FF vector (bit i =
/// seq_elements()[i]).
inline std::vector<bool> image_set(const Netlist& nl, std::size_t depth) {
    const auto seq = nl.seq_elements();
    const auto inputs = nl.inputs();
    const std::size_t k = seq.size();
    const std::uint64_t n_states = 1ULL << k;
    const std::uint64_t n_inputs = 1ULL << inputs.size();
    const sim::CombEngine engine(nl);

    auto step = [&](std::uint64_t s, std::uint64_t u) {
        std::vector<Val3> vals(nl.size(), Val3::X);
        for (std::size_t i = 0; i < k; ++i)
            vals[seq[i]] = (s >> i) & 1 ? Val3::One : Val3::Zero;
        for (std::size_t i = 0; i < inputs.size(); ++i)
            vals[inputs[i]] = (u >> i) & 1 ? Val3::One : Val3::Zero;
        engine.eval(vals);
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < k; ++i) {
            if (vals[nl.fanins(seq[i])[0]] == Val3::One) next |= 1ULL << i;
        }
        return next;
    };

    std::vector<bool> current(n_states, true);
    for (std::size_t d = 0; d < depth; ++d) {
        std::vector<bool> next(n_states, false);
        for (std::uint64_t s = 0; s < n_states; ++s) {
            if (!current[s]) continue;
            for (std::uint64_t u = 0; u < n_inputs; ++u) next[step(s, u)] = true;
        }
        if (next == current) break;  // fixpoint: deeper images are identical
        current = std::move(next);
    }
    return current;
}

/// Evaluate all gate values for packed state `s` and packed input `u`.
inline std::vector<Val3> eval_frame(const Netlist& nl, const sim::CombEngine& engine,
                                    std::uint64_t s, std::uint64_t u) {
    const auto seq = nl.seq_elements();
    const auto inputs = nl.inputs();
    std::vector<Val3> vals(nl.size(), Val3::X);
    for (std::size_t i = 0; i < seq.size(); ++i)
        vals[seq[i]] = (s >> i) & 1 ? Val3::One : Val3::Zero;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        vals[inputs[i]] = (u >> i) & 1 ? Val3::One : Val3::Zero;
    engine.eval(vals);
    return vals;
}

}  // namespace seqlearn::testing
