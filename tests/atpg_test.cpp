// Tests for the sequential ATPG: the D-algorithm engine, the redundancy
// prover, the campaign loop, learned-implication modes, and exhaustive
// soundness checks of untestability claims on small circuits.

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "atpg/engine.hpp"
#include "atpg/redundancy.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace seqlearn::atpg {
namespace {

using fault::Fault;
using fault::FaultStatus;
using fault::kOutputPin;
using logic::Val3;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using sim::InputSequence;

constexpr const char* kS27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

Netlist make_s27() { return netlist::read_bench_string(kS27, "s27"); }

// Exhaustive oracle: does any binary input sequence up to `max_len` frames
// detect `f`? Only for tiny circuits.
bool exhaustively_detectable(const Netlist& nl, const Fault& f, std::size_t max_len) {
    const netlist::Topology topo(nl);
    fault::FaultSimulator fsim(topo);
    const std::size_t m = nl.inputs().size();
    for (std::size_t len = 1; len <= max_len; ++len) {
        const std::uint64_t combos = 1ULL << (m * len);
        for (std::uint64_t bits = 0; bits < combos; ++bits) {
            InputSequence seq(len, sim::InputFrame(m, Val3::X));
            for (std::size_t t = 0; t < len; ++t) {
                for (std::size_t i = 0; i < m; ++i) {
                    seq[t][i] = (bits >> (t * m + i)) & 1 ? Val3::One : Val3::Zero;
                }
            }
            if (fsim.detects(seq, f)) return true;
        }
    }
    return false;
}

TEST(Engine, CombinationalTestGeneration) {
    NetlistBuilder b("and2");
    b.input("a").input("c");
    b.gate(GateType::And, "y", {"a", "c"});
    b.output("y");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    cfg.backtrack_limit = 100;
    const EngineResult r = engine.solve(Fault{nl.find("a"), kOutputPin, Val3::Zero}, 1, cfg);
    ASSERT_EQ(r.status, EngineResult::Status::TestFound);
    fault::FaultSimulator fsim(topo);
    EXPECT_TRUE(fsim.detects(r.test, Fault{nl.find("a"), kOutputPin, Val3::Zero}));
    // The test must be a=1, c=1.
    EXPECT_EQ(r.test[0][0], Val3::One);
    EXPECT_EQ(r.test[0][1], Val3::One);
}

TEST(Engine, GeneratesForEveryDetectableS27Fault) {
    const Netlist nl = make_s27();
    const auto collapsed = fault::collapse(nl);
    const netlist::Topology topo(nl);
    Engine engine(topo);
    fault::FaultSimulator fsim(topo);
    EngineConfig cfg;
    cfg.backtrack_limit = 5000;
    std::size_t found = 0, none = 0;
    for (const Fault& f : collapsed.representatives()) {
        bool detected = false;
        for (std::uint32_t w : {1u, 2u, 3u, 4u, 6u, 8u}) {
            const EngineResult r = engine.solve(f, w, cfg);
            if (r.status == EngineResult::Status::TestFound) {
                ASSERT_TRUE(fsim.detects(r.test, f)) << to_string(nl, f) << " window " << w;
                detected = true;
                break;
            }
        }
        detected ? ++found : ++none;
    }
    // s27 is fully testable; allow a small completeness gap for the
    // window-bounded engine but demand the bulk.
    EXPECT_GE(found, collapsed.size() - 2) << "found " << found << "/" << collapsed.size();
}

TEST(Engine, SequentialDepthNeedsWiderWindow) {
    NetlistBuilder b("pipe");
    b.input("i");
    b.dff("f1", "i");
    b.dff("f2", "f1");
    b.output("f2");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    cfg.backtrack_limit = 1000;
    const Fault f{nl.find("i"), kOutputPin, Val3::Zero};
    EXPECT_NE(engine.solve(f, 2, cfg).status, EngineResult::Status::TestFound);
    const EngineResult r = engine.solve(f, 3, cfg);
    ASSERT_EQ(r.status, EngineResult::Status::TestFound);
    fault::FaultSimulator fsim(topo);
    EXPECT_TRUE(fsim.detects(r.test, f));
}

TEST(Engine, SelfInitializingSequenceRequired) {
    // g = AND(f, j), f = DFF(i): detecting j s-a-1 needs f=1, which must be
    // set up through i in an earlier frame (frame-0 state is unknown).
    NetlistBuilder b("init");
    b.input("i").input("j");
    b.dff("f", "i");
    b.gate(GateType::And, "g", {"f", "j"});
    b.output("g");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    cfg.backtrack_limit = 1000;
    const Fault f{nl.find("j"), kOutputPin, Val3::One};
    EXPECT_NE(engine.solve(f, 1, cfg).status, EngineResult::Status::TestFound);
    const EngineResult r = engine.solve(f, 2, cfg);
    ASSERT_EQ(r.status, EngineResult::Status::TestFound);
    fault::FaultSimulator fsim(topo);
    EXPECT_TRUE(fsim.detects(r.test, f));
    // Frame 0 must drive i=1 so that f=1 in frame 1.
    EXPECT_EQ(r.test[0][0], Val3::One);
    EXPECT_EQ(r.test[1][1], Val3::Zero);
}

TEST(Redundancy, ProvesUntestableAndTestable) {
    // g = AND(a, NOT a) is constant 0; g s-a-0 is untestable, c s-a-0 is not.
    NetlistBuilder b("red");
    b.input("a").input("c");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::And, "g", {"a", "na"});
    b.gate(GateType::Or, "y", {"g", "c"});
    b.output("y");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    EXPECT_EQ(prove_redundancy(engine, Fault{nl.find("g"), kOutputPin, Val3::Zero}, cfg, 10000)
                  .proof,
              fault::UntestableProof::Combinational);
    const RedundancyResult c_verdict =
        prove_redundancy(engine, Fault{nl.find("c"), kOutputPin, Val3::Zero}, cfg, 10000);
    EXPECT_EQ(c_verdict.proof, fault::UntestableProof::None);
    EXPECT_TRUE(c_verdict.combinationally_testable);
}

TEST(Redundancy, FreeStateSeparatesCombinationalFromSequential) {
    // f = DFF(i); y = AND(f, j). With a free state everything is exercisable
    // in one frame, so nothing here is proven untestable.
    NetlistBuilder b("fs");
    b.input("i").input("j");
    b.dff("f", "i");
    b.gate(GateType::And, "y", {"f", "j"});
    b.output("y");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    for (const Fault f : {Fault{nl.find("f"), kOutputPin, Val3::Zero},
                          Fault{nl.find("j"), kOutputPin, Val3::One}}) {
        EXPECT_EQ(prove_redundancy(engine, f, cfg, 10000).proof,
                  fault::UntestableProof::None)
            << to_string(nl, f);
    }
}

TEST(AtpgLoop, FullCampaignOnS27) {
    api::Session session(make_s27());
    AtpgConfig cfg;
    cfg.backtrack_limit = 1000;
    const api::AtpgReport& report = session.atpg(cfg);
    const auto c = report.list.counts();
    EXPECT_EQ(report.outcome.invalid_tests, 0u);
    EXPECT_GE(c.detected, c.total - c.untestable - 2);
    EXPECT_GT(report.list.fault_coverage(), 0.9);
    // Every test in the suite is validated and non-empty.
    for (const auto& t : report.outcome.tests) EXPECT_FALSE(t.empty());
    // The facade's independent validation agrees with the campaign.
    const api::FaultSimReport check = session.fault_sim();
    EXPECT_EQ(check.detected, c.detected);
    EXPECT_EQ(check.total, c.total);
}

TEST(AtpgLoop, UntestableClaimsAreExhaustivelySound) {
    // Small circuits with injected redundancy: every Untestable verdict is
    // cross-checked against all binary sequences up to 4 frames.
    for (const std::uint64_t seed : {5ULL, 17ULL, 29ULL}) {
        const Netlist nl = testing::random_circuit(seed, 2, 3, 10);
        api::Session session(nl);
        AtpgConfig cfg;
        cfg.backtrack_limit = 200;
        cfg.mode = LearnMode::ForbiddenValue;
        const fault::FaultList& list = session.atpg(cfg).list;
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list.status(i) != FaultStatus::Untestable) continue;
            EXPECT_FALSE(exhaustively_detectable(nl, list.fault(i), 4))
                << "seed " << seed << ": " << to_string(nl, list.fault(i));
        }
    }
}

TEST(AtpgLoop, TieDerivedUntestableFaults) {
    // The tied gate's stuck-at-0 must be claimed untestable via the tie.
    NetlistBuilder b("tie");
    b.input("a").input("c");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::And, "g", {"a", "na"});
    b.gate(GateType::Or, "y", {"g", "c"});
    b.dff("f", "y");
    b.gate(GateType::And, "z", {"f", "c"});
    b.output("z");
    const Netlist nl = b.build();
    api::Session session(nl);
    ASSERT_TRUE(session.learn().ties.is_tied(nl.find("g")));

    AtpgConfig cfg;
    cfg.mode = LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 500;
    const AtpgOutcome& out = session.atpg(cfg).outcome;
    EXPECT_GE(out.untestable_by_tie, 1u);
    EXPECT_EQ(out.invalid_tests, 0u);
}

// All three learning modes must produce only validated detections, and
// neither learned mode may *reduce* the set of provably-correct results on
// these small circuits (coverage parity or better is not guaranteed by
// theory for Known/Forbidden — the paper discusses pathologies — but tests
// must stay sound).
class AtpgModes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtpgModes, AllModesProduceValidatedTestsOnly) {
    const std::uint64_t seed = GetParam();
    const Netlist nl = testing::random_circuit(seed, 3, 4, 14);
    const core::LearnResult learned = testing::learn(nl);
    const netlist::Topology topo(nl);
    for (const LearnMode mode :
         {LearnMode::None, LearnMode::KnownValue, LearnMode::ForbiddenValue}) {
        fault::FaultList list(fault::collapse(nl).representatives());
        AtpgConfig cfg;
        cfg.backtrack_limit = 100;
        cfg.mode = mode;
        cfg.learned = mode == LearnMode::None ? nullptr : &learned;
        const AtpgOutcome out = run_atpg(topo, list, cfg);
        EXPECT_EQ(out.invalid_tests, 0u) << "seed " << seed;
        // Re-validate the entire suite end to end, with the same
        // (tie-augmented, when learning) expected-value model the campaign
        // used for its own validation.
        fault::FaultSimulator fsim(topo);
        if (mode != LearnMode::None) {
            fsim.set_good_ties(&learned.ties.dense(), &learned.ties.dense_cycles());
        }
        fault::FaultList revalidate(fault::collapse(nl).representatives());
        for (const auto& t : out.tests) fsim.drop_detected(t, revalidate);
        EXPECT_GE(revalidate.counts().detected, list.counts().detected)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, AtpgModes, ::testing::Values(3, 7, 13, 21));

TEST(AtpgLoop, RandomBootstrapDropsEasyFaults) {
    const Netlist nl = make_s27();
    const netlist::Topology topo(nl);
    fault::FaultList list(fault::collapse(nl).representatives());
    AtpgConfig cfg;
    cfg.backtrack_limit = 1;  // leave essentially everything to the bootstrap
    cfg.identify_untestable = false;
    cfg.random_sequences = 64;
    const AtpgOutcome out = run_atpg(topo, list, cfg);
    EXPECT_GT(out.detected_by_bootstrap, 20u);
    EXPECT_GE(list.counts().detected, out.detected_by_bootstrap);
    // Bootstrap sequences are part of the returned test set.
    EXPECT_FALSE(out.tests.empty());
}

TEST(AtpgLoop, BacktrackLimitCausesAborts) {
    // A reconvergent circuit with a tiny limit should abort somewhere yet
    // never crash; with a large limit the aborted set may only shrink.
    const Netlist nl = make_s27();
    const netlist::Topology topo(nl);
    fault::FaultList tight_list(fault::collapse(nl).representatives());
    AtpgConfig tight;
    tight.backtrack_limit = 1;
    tight.identify_untestable = false;
    run_atpg(topo, tight_list, tight);

    fault::FaultList loose_list(fault::collapse(nl).representatives());
    AtpgConfig loose;
    loose.backtrack_limit = 2000;
    loose.identify_untestable = false;
    run_atpg(topo, loose_list, loose);

    EXPECT_GE(loose_list.counts().detected, tight_list.counts().detected);
    EXPECT_LE(loose_list.counts().aborted, tight_list.counts().aborted + 1);
}

}  // namespace
}  // namespace seqlearn::atpg
