// Unit and property tests for the logic algebras: 3-valued Kleene operators,
// the good/faulty pair algebra (DVal), and 64-lane parallel patterns.

#include "logic/pattern.hpp"
#include "logic/val3.hpp"
#include "logic/val5.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace seqlearn::logic {
namespace {

constexpr std::array<Val3, 3> kAll{Val3::Zero, Val3::One, Val3::X};

const std::array<GateOp, 10> kAllOps{GateOp::Const0, GateOp::Const1, GateOp::Buf,
                                     GateOp::Not,    GateOp::And,    GateOp::Nand,
                                     GateOp::Or,     GateOp::Nor,    GateOp::Xor,
                                     GateOp::Xnor};

TEST(Val3, NotTruthTable) {
    EXPECT_EQ(v3_not(Val3::Zero), Val3::One);
    EXPECT_EQ(v3_not(Val3::One), Val3::Zero);
    EXPECT_EQ(v3_not(Val3::X), Val3::X);
}

TEST(Val3, AndTruthTable) {
    EXPECT_EQ(v3_and(Val3::Zero, Val3::X), Val3::Zero);
    EXPECT_EQ(v3_and(Val3::X, Val3::Zero), Val3::Zero);
    EXPECT_EQ(v3_and(Val3::One, Val3::One), Val3::One);
    EXPECT_EQ(v3_and(Val3::One, Val3::X), Val3::X);
    EXPECT_EQ(v3_and(Val3::X, Val3::X), Val3::X);
}

TEST(Val3, OrTruthTable) {
    EXPECT_EQ(v3_or(Val3::One, Val3::X), Val3::One);
    EXPECT_EQ(v3_or(Val3::X, Val3::One), Val3::One);
    EXPECT_EQ(v3_or(Val3::Zero, Val3::Zero), Val3::Zero);
    EXPECT_EQ(v3_or(Val3::Zero, Val3::X), Val3::X);
}

TEST(Val3, XorTruthTable) {
    EXPECT_EQ(v3_xor(Val3::Zero, Val3::One), Val3::One);
    EXPECT_EQ(v3_xor(Val3::One, Val3::One), Val3::Zero);
    EXPECT_EQ(v3_xor(Val3::X, Val3::One), Val3::X);
    EXPECT_EQ(v3_xor(Val3::Zero, Val3::X), Val3::X);
}

TEST(Val3, DeMorganHoldsOverAllPairs) {
    for (const Val3 a : kAll) {
        for (const Val3 b : kAll) {
            EXPECT_EQ(v3_not(v3_and(a, b)), v3_or(v3_not(a), v3_not(b)));
            EXPECT_EQ(v3_not(v3_or(a, b)), v3_and(v3_not(a), v3_not(b)));
        }
    }
}

TEST(Val3, Commutativity) {
    for (const Val3 a : kAll) {
        for (const Val3 b : kAll) {
            EXPECT_EQ(v3_and(a, b), v3_and(b, a));
            EXPECT_EQ(v3_or(a, b), v3_or(b, a));
            EXPECT_EQ(v3_xor(a, b), v3_xor(b, a));
        }
    }
}

// Information monotonicity: refining an X input to a binary value never
// flips an already-binary output (it can only refine X outputs). This is the
// property that makes learned implications sound.
TEST(Val3, OperatorsAreMonotoneInInformationOrder) {
    auto refines = [](Val3 coarse, Val3 fine) {
        return coarse == Val3::X || coarse == fine;
    };
    for (const GateOp op : kAllOps) {
        for (const Val3 a : kAll) {
            for (const Val3 b : kAll) {
                const std::array<Val3, 2> coarse{a, b};
                const Val3 out_coarse = eval_op(op, coarse);
                for (const Val3 ra : kAll) {
                    for (const Val3 rb : kAll) {
                        if (!refines(a, ra) || !refines(b, rb)) continue;
                        const std::array<Val3, 2> fine{ra, rb};
                        const Val3 out_fine = eval_op(op, fine);
                        EXPECT_TRUE(refines(out_coarse, out_fine))
                            << to_string(op) << " not monotone";
                    }
                }
            }
        }
    }
}

TEST(Val3, EvalOpWideGates) {
    const std::vector<Val3> all_one(5, Val3::One);
    EXPECT_EQ(eval_op(GateOp::And, all_one), Val3::One);
    EXPECT_EQ(eval_op(GateOp::Nand, all_one), Val3::Zero);
    std::vector<Val3> with_zero = all_one;
    with_zero[3] = Val3::Zero;
    EXPECT_EQ(eval_op(GateOp::And, with_zero), Val3::Zero);
    EXPECT_EQ(eval_op(GateOp::Nor, with_zero), Val3::Zero);
    std::vector<Val3> xor_in{Val3::One, Val3::One, Val3::One};
    EXPECT_EQ(eval_op(GateOp::Xor, xor_in), Val3::One);
    EXPECT_EQ(eval_op(GateOp::Xnor, xor_in), Val3::Zero);
}

TEST(Val3, EvalOpConstantsIgnoreInputs) {
    const std::vector<Val3> ins{Val3::X, Val3::One};
    EXPECT_EQ(eval_op(GateOp::Const0, ins), Val3::Zero);
    EXPECT_EQ(eval_op(GateOp::Const1, ins), Val3::One);
}

TEST(Val3, ControllingValues) {
    EXPECT_EQ(controlling_value(GateOp::And), Val3::Zero);
    EXPECT_EQ(controlling_value(GateOp::Nand), Val3::Zero);
    EXPECT_EQ(controlling_value(GateOp::Or), Val3::One);
    EXPECT_EQ(controlling_value(GateOp::Nor), Val3::One);
    EXPECT_EQ(controlling_value(GateOp::Xor), Val3::X);
    EXPECT_EQ(controlling_value(GateOp::Buf), Val3::X);
}

TEST(Val3, OutputInversionParity) {
    EXPECT_TRUE(output_inverted(GateOp::Nand));
    EXPECT_TRUE(output_inverted(GateOp::Nor));
    EXPECT_TRUE(output_inverted(GateOp::Not));
    EXPECT_TRUE(output_inverted(GateOp::Xnor));
    EXPECT_FALSE(output_inverted(GateOp::And));
    EXPECT_FALSE(output_inverted(GateOp::Buf));
}

TEST(Val3, CharConversionRoundTrip) {
    for (const Val3 v : kAll) EXPECT_EQ(val3_from_char(to_char(v)), v);
    EXPECT_THROW(val3_from_char('z'), std::invalid_argument);
}

// --- DVal ---------------------------------------------------------------

TEST(DVal, ConstantsAndPredicates) {
    EXPECT_TRUE(is_fault_effect(kD));
    EXPECT_TRUE(is_fault_effect(kDBar));
    EXPECT_FALSE(is_fault_effect(kDOne));
    EXPECT_TRUE(is_binary_equal(kDZero));
    EXPECT_FALSE(is_binary_equal(kD));
    EXPECT_FALSE(fully_known(DVal{Val3::One, Val3::X}));
}

TEST(DVal, NotSwapsWithinPlanes) {
    EXPECT_EQ(dval_not(kD), kDBar);
    EXPECT_EQ(dval_not(kDBar), kD);
    EXPECT_EQ(dval_not(kDZero), kDOne);
    EXPECT_EQ(dval_not(kDX), kDX);
}

TEST(DVal, ClassicDCalculus) {
    // D AND 1 = D; D AND 0 = 0; D AND D' = 0; D OR D' = 1.
    const std::array<DVal, 2> d_and_1{kD, kDOne};
    EXPECT_EQ(eval_op(GateOp::And, d_and_1), kD);
    const std::array<DVal, 2> d_and_0{kD, kDZero};
    EXPECT_EQ(eval_op(GateOp::And, d_and_0), kDZero);
    const std::array<DVal, 2> d_and_dbar{kD, kDBar};
    EXPECT_EQ(eval_op(GateOp::And, d_and_dbar), kDZero);
    const std::array<DVal, 2> d_or_dbar{kD, kDBar};
    EXPECT_EQ(eval_op(GateOp::Or, d_or_dbar), kDOne);
    const std::array<DVal, 2> d_xor_d{kD, kD};
    EXPECT_EQ(eval_op(GateOp::Xor, d_xor_d), kDZero);
    const std::array<DVal, 2> d_xor_dbar{kD, kDBar};
    EXPECT_EQ(eval_op(GateOp::Xor, d_xor_dbar), kDOne);
}

// The pair algebra must agree with two independent scalar evaluations.
TEST(DVal, PlanewiseAgreesWithScalarEval) {
    std::array<DVal, 2> ins{};
    for (const GateOp op : kAllOps) {
        for (const Val3 g0 : kAll) {
            for (const Val3 f0 : kAll) {
                for (const Val3 g1 : kAll) {
                    for (const Val3 f1 : kAll) {
                        ins[0] = DVal{g0, f0};
                        ins[1] = DVal{g1, f1};
                        const DVal out = eval_op(op, ins);
                        const std::array<Val3, 2> goods{g0, g1};
                        const std::array<Val3, 2> faults{f0, f1};
                        EXPECT_EQ(out.good, eval_op(op, goods));
                        EXPECT_EQ(out.faulty, eval_op(op, faults));
                    }
                }
            }
        }
    }
}

TEST(DVal, ToString) {
    EXPECT_EQ(to_string(kD), "D");
    EXPECT_EQ(to_string(kDBar), "D'");
    EXPECT_EQ(to_string(kDX), "X");
    EXPECT_EQ(to_string(DVal{Val3::One, Val3::X}), "1/X");
}

// --- Pattern -------------------------------------------------------------

TEST(Pattern, LaneSetGetRoundTrip) {
    Pattern p = kPatAllX;
    pat_set(p, 0, Val3::One);
    pat_set(p, 5, Val3::Zero);
    pat_set(p, 63, Val3::One);
    EXPECT_EQ(pat_get(p, 0), Val3::One);
    EXPECT_EQ(pat_get(p, 5), Val3::Zero);
    EXPECT_EQ(pat_get(p, 63), Val3::One);
    EXPECT_EQ(pat_get(p, 7), Val3::X);
    pat_set(p, 0, Val3::X);
    EXPECT_EQ(pat_get(p, 0), Val3::X);
}

TEST(Pattern, BroadcastMatchesLanes) {
    for (const Val3 v : kAll) {
        const Pattern p = pat_broadcast(v);
        for (int lane = 0; lane < 64; lane += 13) EXPECT_EQ(pat_get(p, lane), v);
    }
}

// Every pattern operator must match the scalar operator lane by lane.
TEST(Pattern, OpsMatchScalarLanewise) {
    // Build two patterns cycling through all 9 value pairs.
    Pattern a = kPatAllX, b = kPatAllX;
    for (int lane = 0; lane < 64; ++lane) {
        pat_set(a, lane, kAll[static_cast<std::size_t>(lane) % 3]);
        pat_set(b, lane, kAll[(static_cast<std::size_t>(lane) / 3) % 3]);
    }
    const Pattern pn = pat_not(a);
    const Pattern pa = pat_and(a, b);
    const Pattern po = pat_or(a, b);
    const Pattern px = pat_xor(a, b);
    for (int lane = 0; lane < 64; ++lane) {
        const Val3 va = pat_get(a, lane);
        const Val3 vb = pat_get(b, lane);
        EXPECT_EQ(pat_get(pn, lane), v3_not(va));
        EXPECT_EQ(pat_get(pa, lane), v3_and(va, vb));
        EXPECT_EQ(pat_get(po, lane), v3_or(va, vb));
        EXPECT_EQ(pat_get(px, lane), v3_xor(va, vb));
    }
}

TEST(Pattern, EvalOpMatchesScalarForAllOps) {
    Pattern a = kPatAllX, b = kPatAllX, c = kPatAllX;
    for (int lane = 0; lane < 64; ++lane) {
        pat_set(a, lane, kAll[static_cast<std::size_t>(lane) % 3]);
        pat_set(b, lane, kAll[(static_cast<std::size_t>(lane) / 3) % 3]);
        pat_set(c, lane, kAll[(static_cast<std::size_t>(lane) / 9) % 3]);
    }
    const std::array<Pattern, 3> pats{a, b, c};
    for (const GateOp op : kAllOps) {
        const Pattern out = eval_op(op, pats.data(), 3);
        for (int lane = 0; lane < 64; ++lane) {
            const std::array<Val3, 3> ins{pat_get(a, lane), pat_get(b, lane), pat_get(c, lane)};
            EXPECT_EQ(pat_get(out, lane), eval_op(op, ins)) << to_string(op) << " lane " << lane;
        }
    }
}

TEST(Pattern, KnownAndDiffMasks) {
    Pattern a = kPatAllX, b = kPatAllX;
    pat_set(a, 0, Val3::One);
    pat_set(b, 0, Val3::Zero);  // differ
    pat_set(a, 1, Val3::One);
    pat_set(b, 1, Val3::One);  // equal
    pat_set(a, 2, Val3::One);  // b unknown
    EXPECT_EQ(pat_known(a) & 7ULL, 7ULL);
    EXPECT_EQ(pat_known(b) & 7ULL, 3ULL);
    EXPECT_EQ(pat_diff(a, b) & 7ULL, 1ULL);
}

}  // namespace
}  // namespace seqlearn::logic
