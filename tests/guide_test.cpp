// Guidance subsystem tests: SCOAP testability values hand-checked against
// the Goldstein formulas (combinational chain, XOR parity, and the full s27
// sequential fixpoint), fault-ordering strategies as schedule permutations,
// warmup + compaction output re-verified by an independent fault simulator,
// and the guarantee that `guidance = none` (the default) preserves the
// recorded pre-guidance campaign digests at every thread count.

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "fault/collapse.hpp"
#include "fault/fault_sim.hpp"
#include "guide/fault_order.hpp"
#include "guide/random_tpg.hpp"
#include "guide/testability.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/topology.hpp"
#include "test_helpers.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace seqlearn::guide {
namespace {

using logic::Val3;
using netlist::Netlist;
using netlist::Topology;

std::uint32_t cc0_of(const Netlist& nl, const Testability& t, const char* name) {
    return t.cc0(nl.find(name));
}
std::uint32_t cc1_of(const Netlist& nl, const Testability& t, const char* name) {
    return t.cc1(nl.find(name));
}
std::uint32_t co_of(const Netlist& nl, const Testability& t, const char* name) {
    return t.co(nl.find(name));
}

// Hand-computed SCOAP on a three-gate combinational chain. Side inputs are
// charged at their non-controlling value: CC0 through an OR, CC1 through an
// AND.
//
//   D = AND(A,B):  CC1 = 1+1+1 = 3, CC0 = 1+min(1,1) = 2
//   E = OR(D,C):   CC0 = 1+2+1 = 4, CC1 = 1+min(3,1) = 2
//   O = NOT(E):    CC0 = CC1(E)+1 = 3, CC1 = CC0(E)+1 = 5
//   CO(O) = 0 (primary output); CO(E) = 1 (through the NOT)
//   CO(D) = CO(E)+1+CC0(C) = 1+1+1 = 3   (hold C at 0 through the OR)
//   CO(C) = CO(E)+1+CC0(D) = 1+1+2 = 4
//   CO(A) = CO(D)+1+CC1(B) = 3+1+1 = 5   (hold B at 1 through the AND)
TEST(Testability, HandCheckedCombChain) {
    const Netlist nl = netlist::read_bench_string(R"(
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(O)
D = AND(A, B)
E = OR(D, C)
O = NOT(E)
)",
                                                  "chain");
    const Topology topo(nl);
    const Testability t(topo);

    for (const char* pi : {"A", "B", "C"}) {
        EXPECT_EQ(cc0_of(nl, t, pi), 1u) << pi;
        EXPECT_EQ(cc1_of(nl, t, pi), 1u) << pi;
    }
    EXPECT_EQ(cc0_of(nl, t, "D"), 2u);
    EXPECT_EQ(cc1_of(nl, t, "D"), 3u);
    EXPECT_EQ(cc0_of(nl, t, "E"), 4u);
    EXPECT_EQ(cc1_of(nl, t, "E"), 2u);
    EXPECT_EQ(cc0_of(nl, t, "O"), 3u);
    EXPECT_EQ(cc1_of(nl, t, "O"), 5u);

    EXPECT_EQ(co_of(nl, t, "O"), 0u);
    EXPECT_EQ(co_of(nl, t, "E"), 1u);
    EXPECT_EQ(co_of(nl, t, "D"), 3u);
    EXPECT_EQ(co_of(nl, t, "C"), 4u);
    EXPECT_EQ(co_of(nl, t, "A"), 5u);
    EXPECT_EQ(co_of(nl, t, "B"), 5u);
}

// XOR parity: driving XOR(A,B) to 0 needs an even number of 1s on the
// inputs, to 1 an odd number; with unit input costs both minima are 2, so
// CC0 = CC1 = 3. Observing A through the XOR charges the side input at its
// cheaper polarity: CO(A) = CO(X)+1+min(CC0(B),CC1(B)) = 0+1+1 = 2.
TEST(Testability, HandCheckedXorParity) {
    const Netlist nl = netlist::read_bench_string(R"(
INPUT(A)
INPUT(B)
OUTPUT(X)
X = XOR(A, B)
)",
                                                  "xor2");
    const Topology topo(nl);
    const Testability t(topo);
    EXPECT_EQ(cc0_of(nl, t, "X"), 3u);
    EXPECT_EQ(cc1_of(nl, t, "X"), 3u);
    EXPECT_EQ(co_of(nl, t, "A"), 2u);
    EXPECT_EQ(co_of(nl, t, "B"), 2u);
}

// Full sequential fixpoint on the ISCAS-89 s27 netlist, hand-iterated from
// the formulas with the kSeqStep = 10 frame-crossing penalty (flip-flops
// start unconstrained and converge after three sweeps):
//
//   sweep 1 seeds the combinational slice with FFs at infinity, the FF
//   update then gives G5 = G10+10 = (13,20), G7 = G13+10 = (12,14);
//   sweep 2 re-evaluates with those state costs and lands the fixpoint
//   below (sweep 3 confirms it; G6 = G11+10 keeps the expensive CC1
//   because G11's 1-state needs both G5 = 0 and G9 = 0 first).
TEST(Testability, S27SequentialFixpoint) {
    const Netlist nl = workload::suite_circuit("s27");
    const Topology topo(nl);
    const Testability t(topo);

    const struct {
        const char* name;
        std::uint32_t cc0, cc1;
    } expected[] = {
        {"G0", 1, 1},   {"G1", 1, 1},  {"G2", 1, 1},  {"G3", 1, 1},
        {"G14", 2, 2},  {"G12", 2, 14}, {"G13", 2, 4}, {"G8", 3, 45},
        {"G15", 6, 15}, {"G16", 5, 2}, {"G9", 18, 6}, {"G11", 7, 32},
        {"G10", 3, 10}, {"G17", 33, 8}, {"G5", 13, 20}, {"G6", 17, 42},
        {"G7", 12, 14},
    };
    for (const auto& e : expected) {
        EXPECT_EQ(cc0_of(nl, t, e.name), e.cc0) << e.name;
        EXPECT_EQ(cc1_of(nl, t, e.name), e.cc1) << e.name;
    }

    // Observabilities around the output cone: G17 is the primary output and
    // G11 is one inversion away (its other fanouts are strictly worse).
    // G5 and G9 are observed through G11 = NOR(G5, G9) with the sibling
    // held at the NOR's non-controlling 0:
    //   CO(G5) = CO(G11)+1+CC0(G9) = 1+1+18 = 20
    //   CO(G9) = CO(G11)+1+CC0(G5) = 1+1+13 = 15
    // G10 is only observable through the G5 flip-flop, one frame later:
    //   CO(G10) = CO(G5)+10 = 30.
    EXPECT_EQ(co_of(nl, t, "G17"), 0u);
    EXPECT_EQ(co_of(nl, t, "G11"), 1u);
    EXPECT_EQ(co_of(nl, t, "G5"), 20u);
    EXPECT_EQ(co_of(nl, t, "G9"), 15u);
    EXPECT_EQ(co_of(nl, t, "G10"), 30u);

    // Everything in s27 is controllable and observable within bounded cost.
    for (netlist::GateId g = 0; g < nl.size(); ++g) {
        EXPECT_LT(t.cc0(g), Testability::kInf) << nl.name_of(g);
        EXPECT_LT(t.cc1(g), Testability::kInf) << nl.name_of(g);
        EXPECT_LT(t.co(g), Testability::kInf) << nl.name_of(g);
    }
}

// Structural invariants on a small generated circuit: unit costs on the
// inputs, zero observability on the outputs, every combinational gate
// strictly more expensive than its cheapest fanin, and fault hardness
// consistent with the cc/co tables it is defined from.
TEST(Testability, GeneratedCircuitInvariants) {
    const Netlist nl = testing::random_circuit(7, 6, 5, 30);
    const Topology topo(nl);
    const Testability t(topo);

    for (const netlist::GateId pi : nl.inputs()) {
        EXPECT_EQ(t.cc0(pi), 1u);
        EXPECT_EQ(t.cc1(pi), 1u);
    }
    for (const netlist::GateId po : nl.outputs()) EXPECT_EQ(t.co(po), 0u);
    for (netlist::GateId g = 0; g < nl.size(); ++g) {
        if (!topo.is_comb(g) || topo.is_const(g) || nl.fanins(g).empty()) continue;
        std::uint32_t cheapest = Testability::kInf;
        for (const netlist::GateId f : nl.fanins(g))
            cheapest = std::min({cheapest, t.cc0(f), t.cc1(f)});
        if (cheapest >= Testability::kInf) continue;
        EXPECT_GT(t.cc0(g), cheapest) << nl.name_of(g);
        EXPECT_GT(t.cc1(g), cheapest) << nl.name_of(g);
    }
    // Hardness is activation cost plus observation cost, saturating at kInf.
    const auto sat = [](std::uint32_t a, std::uint32_t b) {
        return std::min(Testability::kInf, std::min(a, Testability::kInf) +
                                               std::min(b, Testability::kInf));
    };
    for (const fault::Fault& f : fault::fault_universe(nl)) {
        const Val3 activate = logic::v3_opposite(f.stuck);
        if (f.pin == fault::kOutputPin) {
            EXPECT_EQ(t.hardness(f),
                      sat(t.controllability(f.gate, activate), t.co(f.gate)));
        } else {
            const netlist::GateId driver =
                nl.fanins(f.gate)[static_cast<std::size_t>(f.pin)];
            EXPECT_EQ(t.hardness(f),
                      sat(t.controllability(driver, activate),
                          t.pin_co(f.gate, static_cast<std::size_t>(f.pin))));
        }
    }
}

// Every ordering strategy must be a permutation of the canonical schedule:
// same index set, nothing added, nothing dropped.
TEST(FaultOrder, StrategiesArePermutations) {
    for (const char* circuit : {"s27", "rt510a"}) {
        const Netlist nl = workload::suite_circuit(circuit);
        const Topology topo(nl);
        const Testability tst(topo);
        const fault::FaultList list(fault::collapse(nl).representatives());
        std::vector<std::size_t> canonical(list.size());
        std::iota(canonical.begin(), canonical.end(), 0);

        for (const OrderStrategy s :
             {OrderStrategy::Index, OrderStrategy::Level, OrderStrategy::ScoapHardFirst,
              OrderStrategy::Random}) {
            std::vector<std::size_t> targets = canonical;
            order_targets(targets, s, topo, list, &tst, /*seed=*/42);
            std::vector<std::size_t> sorted = targets;
            std::sort(sorted.begin(), sorted.end());
            EXPECT_EQ(sorted, canonical)
                << circuit << " strategy " << order_name(s) << " is not a permutation";
            if (s == OrderStrategy::Index) EXPECT_EQ(targets, canonical);
        }
    }
}

std::uint64_t outcome_digest(const fault::FaultList& list,
                             const atpg::AtpgOutcome& out) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (std::size_t i = 0; i < list.size(); ++i)
        mix(static_cast<std::uint64_t>(list.status(i)));
    for (const sim::InputSequence& seq : out.tests)
        for (const sim::InputFrame& frame : seq)
            for (const Val3 v : frame) mix(static_cast<std::uint64_t>(v));
    return h;
}

// Campaigns under every (ordering, guidance) combination: the fault universe
// is invariant, and each configuration is bit-identical at 1, 2, and 8
// worker threads (ordered speculative commit makes the strategy part of the
// schedule, not of the race).
TEST(FaultOrder, CampaignsBitIdenticalAcrossThreads) {
    const Netlist nl = workload::suite_circuit("rt510a");
    const Topology topo(nl);

    for (const OrderStrategy order :
         {OrderStrategy::Index, OrderStrategy::ScoapHardFirst, OrderStrategy::Random}) {
        for (const Guidance g : {Guidance::None, Guidance::Scoap}) {
            std::uint64_t serial_digest = 0;
            fault::FaultList::Counts serial_counts;
            for (const unsigned threads : {1u, 2u, 8u}) {
                atpg::AtpgConfig cfg;
                cfg.threads = threads;
                cfg.mode = atpg::LearnMode::None;
                cfg.identify_untestable = false;
                cfg.backtrack_limit = 10;
                cfg.windows = {1, 2};
                cfg.order = order;
                cfg.order_seed = 7;
                cfg.guidance = g;
                fault::FaultList list(fault::collapse(nl).representatives());
                const atpg::AtpgOutcome out = atpg::run_atpg(topo, list, cfg);
                ASSERT_TRUE(out.run.ok());
                const std::uint64_t digest = outcome_digest(list, out);
                const fault::FaultList::Counts c = list.counts();
                if (threads == 1) {
                    serial_digest = digest;
                    serial_counts = c;
                } else {
                    EXPECT_EQ(digest, serial_digest)
                        << order_name(order) << "/" << guidance_name(g) << " threads "
                        << threads;
                }
                EXPECT_EQ(c.total, serial_counts.total);
                EXPECT_EQ(c.detected, serial_counts.detected);
            }
        }
    }
}

// Warmup + compaction end to end: the final pattern set, replayed through a
// fresh fault simulator, must re-detect exactly the faults the campaign
// reported detected — compaction may drop and merge patterns but never
// coverage. With a non-X fill mode the emitted patterns are fully specified.
TEST(RandomTpg, WarmupCompactionReverifiedByFaultSim) {
    const Netlist nl = workload::suite_circuit("rt510a");
    const Topology topo(nl);

    atpg::AtpgConfig cfg;
    cfg.threads = 1;
    cfg.mode = atpg::LearnMode::None;
    cfg.identify_untestable = false;
    cfg.backtrack_limit = 10;
    cfg.windows = {1, 2};
    cfg.rand_warmup = 32;
    cfg.compact = true;
    cfg.fill = FillMode::Random;
    fault::FaultList list(fault::collapse(nl).representatives());
    const atpg::AtpgOutcome out = atpg::run_atpg(topo, list, cfg);
    ASSERT_TRUE(out.run.ok());
    EXPECT_GT(out.detected_by_warmup, 0u);
    EXPECT_EQ(out.compaction_after, out.tests.size());
    EXPECT_LE(out.compaction_after, out.compaction_before);

    for (const sim::InputSequence& seq : out.tests)
        for (const sim::InputFrame& frame : seq)
            for (const Val3 v : frame) EXPECT_NE(v, Val3::X);

    // Independent re-verification: fresh simulator, fresh fault list.
    fault::FaultSimulator fsim(topo);
    fault::FaultList replay(fault::collapse(nl).representatives());
    for (const sim::InputSequence& seq : out.tests) fsim.drop_detected(seq, replay);
    EXPECT_EQ(replay.counts().detected, list.counts().detected);
    std::size_t frames = 0;
    for (const sim::InputSequence& seq : out.tests) frames += seq.size();
    EXPECT_EQ(frames, out.pattern_frames);
}

// The default configuration — order=index, guidance=none, no warmup, no
// compaction — must keep reproducing the recorded pre-guidance campaign
// digests, even with the Design's cached Testability explicitly attached
// (it may only be consulted when a SCOAP consumer is switched on).
TEST(AtpgGuidance, NonePreservesRecordedCampaignDigests) {
    const struct {
        const char* circuit;
        atpg::LearnMode mode;
        std::uint32_t backtrack_limit;
        std::uint64_t digest;
    } goldens[] = {
        {"s27", atpg::LearnMode::ForbiddenValue, 100, 18111582773122034168ULL},
        {"rt510a", atpg::LearnMode::ForbiddenValue, 30, 8688592942972918127ULL},
    };
    for (const auto& g : goldens) {
        const api::DesignPtr design =
            api::DesignBuilder(workload::suite_circuit(g.circuit)).build();
        for (const unsigned threads : {1u, 2u, 8u}) {
            api::SessionConfig scfg;
            scfg.threads = threads;
            api::Session session(design, std::move(scfg));
            session.learn();
            atpg::AtpgConfig cfg;
            cfg.mode = g.mode;
            cfg.backtrack_limit = g.backtrack_limit;
            cfg.order = OrderStrategy::Index;
            cfg.guidance = Guidance::None;
            cfg.testability = &design->testability();
            const api::AtpgReport& report = session.atpg(cfg);
            EXPECT_EQ(api::campaign_digest(report), g.digest)
                << g.circuit << " threads " << threads;
        }
    }
}

}  // namespace
}  // namespace seqlearn::guide
