// Tests for the core learning engine: implication database, stem records,
// gate equivalences, single- and multiple-node learning, tie gates, invalid
// states — plus exhaustive soundness oracles on random circuits.

#include "core/db_io.hpp"
#include "core/equivalence.hpp"
#include "core/impl_db.hpp"
#include "core/invalid_state.hpp"
#include "core/seq_learn.hpp"
#include "core/stem_records.hpp"
#include "core/tie.hpp"
#include "fault/fault.hpp"
#include "netlist/builder.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace seqlearn::core {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;

// --- ImplicationDB ---------------------------------------------------------

TEST(ImplDB, AddQueryAndContrapositive) {
    ImplicationDB db(10);
    const Literal a{2, Val3::One}, b{5, Val3::Zero};
    EXPECT_TRUE(db.add(a, b, 1));
    EXPECT_FALSE(db.add(a, b, 1));  // duplicate
    EXPECT_EQ(db.size(), 1u);
    EXPECT_TRUE(db.implies(a, b));
    EXPECT_TRUE(db.implies(negate(b), negate(a)));  // contrapositive
    EXPECT_FALSE(db.implies(b, a));                 // converse is not implied
    EXPECT_FALSE(db.implies(negate(a), negate(b)));
}

TEST(ImplDB, ContrapositiveInsertIsSameRelation) {
    ImplicationDB db(10);
    const Literal a{2, Val3::One}, b{5, Val3::Zero};
    EXPECT_TRUE(db.add(a, b, 3));
    EXPECT_FALSE(db.add(negate(b), negate(a), 3));
    EXPECT_EQ(db.size(), 1u);
}

TEST(ImplDB, FrameTagKeepsEarliest) {
    ImplicationDB db(10);
    const Literal a{2, Val3::One}, b{5, Val3::Zero};
    db.add(a, b, 7);
    EXPECT_EQ(db.frame_of(a, b), 7u);
    db.add(a, b, 3);
    EXPECT_EQ(db.frame_of(a, b), 3u);
    db.add(negate(b), negate(a), 9);  // same relation, later frame: keep 3
    EXPECT_EQ(db.frame_of(a, b), 3u);
}

TEST(ImplDB, RejectsTieStatements) {
    ImplicationDB db(10);
    EXPECT_THROW(db.add({3, Val3::One}, {3, Val3::Zero}, 0), std::invalid_argument);
    EXPECT_FALSE(db.add({3, Val3::One}, {3, Val3::One}, 0));  // tautology ignored
}

TEST(ImplDB, RelationsEnumerateOnce) {
    ImplicationDB db(10);
    db.add({1, Val3::Zero}, {2, Val3::One}, 0);
    db.add({3, Val3::One}, {4, Val3::One}, 2);
    const auto rels = db.relations();
    EXPECT_EQ(rels.size(), 2u);
    for (const Relation& r : rels) EXPECT_EQ(r.canonical(), r);
}

TEST(ImplDB, ImpliedByListsDirectConsequences) {
    ImplicationDB db(10);
    const Literal a{1, Val3::One};
    db.add(a, {2, Val3::Zero}, 1);
    db.add(a, {3, Val3::One}, 1);
    const auto implied = db.implied_by(a);
    EXPECT_EQ(implied.size(), 2u);
}

// --- StemRecords ------------------------------------------------------------

TEST(StemRecords, AddDedupAndTargets) {
    StemRecords rec(0);
    const Literal n{4, Val3::One}, s{1, Val3::Zero};
    rec.add(n, s, 2);
    rec.add(n, s, 2);  // duplicate
    rec.add(n, s, 3);  // same stem, different offset: distinct record
    rec.add(n, {2, Val3::One}, 1);
    EXPECT_EQ(rec.records_for(n).size(), 3u);
    EXPECT_EQ(rec.total_records(), 3u);
    EXPECT_EQ(rec.targets(2).size(), 1u);
    EXPECT_EQ(rec.targets(4).size(), 0u);
}

TEST(StemRecords, CapBoundsPerKey) {
    StemRecords rec(2);
    const Literal n{4, Val3::One};
    rec.add(n, {1, Val3::Zero}, 0);
    rec.add(n, {2, Val3::Zero}, 0);
    rec.add(n, {3, Val3::Zero}, 0);  // dropped by cap
    EXPECT_EQ(rec.records_for(n).size(), 2u);
}

// --- TieSet -----------------------------------------------------------------

TEST(TieSet, BasicAccounting) {
    TieSet ties(8);
    ties.set(1, Val3::Zero, 0);
    ties.set(2, Val3::One, 3);
    EXPECT_TRUE(ties.is_tied(1));
    EXPECT_EQ(ties.value(2), Val3::One);
    EXPECT_EQ(ties.cycle(2), 3u);
    EXPECT_EQ(ties.count(), 2u);
    EXPECT_EQ(ties.count_combinational(), 1u);
    EXPECT_EQ(ties.count_sequential(), 1u);
    ties.set(2, Val3::One, 1);  // better cycle
    EXPECT_EQ(ties.cycle(2), 1u);
    EXPECT_THROW(ties.set(2, Val3::Zero, 0), std::logic_error);
}

TEST(TieSet, UntestableFaultDerivation) {
    // g tied to 0 -> g s-a-0 untestable, and s-a-0 on each branch pin fed
    // by g untestable too.
    NetlistBuilder b("t");
    b.input("a").input("c");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::And, "g", {"a", "na"});  // tied 0
    b.gate(GateType::Or, "o1", {"g", "c"});
    b.gate(GateType::And, "o2", {"g", "c"});
    b.output("o1").output("o2");
    const Netlist nl = b.build();
    TieSet ties(nl.size());
    ties.set(nl.find("g"), Val3::Zero, 0);
    const auto universe = fault::fault_universe(nl);
    const auto unt = ties.untestable_faults(nl, universe);
    // g s-a-0 plus branch s-a-0 on o1.in0 and o2.in0.
    EXPECT_EQ(unt.size(), 3u);
    for (const auto& f : unt) EXPECT_EQ(f.stuck, Val3::Zero);
}

// --- Equivalences ------------------------------------------------------------

TEST(Equivalence, FindsDeMorganPair) {
    NetlistBuilder b("dm");
    b.input("a").input("c");
    b.gate(GateType::And, "g1", {"a", "c"});
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::Not, "nc", {"c"});
    b.gate(GateType::Nor, "g2", {"na", "nc"});  // == g1
    b.gate(GateType::Nand, "g3", {"a", "c"});   // == !g1
    b.output("g2");
    const Netlist nl = b.build();
    const EquivResult eq = find_equivalences(nl);
    const GateId g1 = nl.find("g1"), g2 = nl.find("g2"), g3 = nl.find("g3");
    ASSERT_NE(eq.rep[g1], netlist::kNoGate);
    EXPECT_EQ(eq.rep[g1], eq.rep[g2]);
    EXPECT_EQ(eq.rep[g1], eq.rep[g3]);
    EXPECT_EQ(eq.inverted[g1], eq.inverted[g2]);
    EXPECT_NE(eq.inverted[g1], eq.inverted[g3]);
    EXPECT_GE(eq.num_classes, 1u);
}

TEST(Equivalence, RefutesNearMisses) {
    // g1 = AND(a,c), g2 = AND(a,d): same only when c==d patterns collide —
    // the exhaustive proof must reject the pair even if signatures collide.
    NetlistBuilder b("near");
    b.input("a").input("c").input("d");
    b.gate(GateType::And, "g1", {"a", "c"});
    b.gate(GateType::And, "g2", {"a", "d"});
    b.output("g1").output("g2");
    const Netlist nl = b.build();
    const EquivResult eq = find_equivalences(nl);
    const GateId g1 = nl.find("g1"), g2 = nl.find("g2");
    EXPECT_TRUE(eq.rep[g1] == netlist::kNoGate || eq.rep[g1] != eq.rep[g2]);
}

TEST(Equivalence, SupportCapDropsLargeCandidates) {
    NetlistBuilder b("big");
    std::vector<std::string> ins;
    for (int i = 0; i < 6; ++i) {
        b.input("i" + std::to_string(i));
        ins.push_back("i" + std::to_string(i));
    }
    b.gate(GateType::And, "w1", {ins[0], ins[1], ins[2], ins[3], ins[4], ins[5]});
    b.gate(GateType::And, "w2", {ins[5], ins[4], ins[3], ins[2], ins[1], ins[0]});
    b.output("w1").output("w2");
    const Netlist nl = b.build();
    EquivOptions opt;
    opt.support_cap = 3;  // force the drop
    const EquivResult eq = find_equivalences(nl, opt);
    EXPECT_GE(eq.dropped, 1u);
    EXPECT_TRUE(eq.rep[nl.find("w1")] == netlist::kNoGate ||
                eq.rep[nl.find("w1")] != eq.rep[nl.find("w2")]);
    EquivOptions wide;
    wide.support_cap = 8;
    const EquivResult eq2 = find_equivalences(nl, wide);
    EXPECT_EQ(eq2.rep[nl.find("w1")], eq2.rep[nl.find("w2")]);
}

// --- Learning: hand-built scenarios -----------------------------------------

// F1 = DFF(a), F2 = DFF(OR(a, c)): F1=1 => F2=1 one frame later (invalid
// state F1=1, F2=0). Single-node learning on stem `a` must find it.
TEST(Learning, SingleNodeFindsInvalidStateRelation) {
    NetlistBuilder b("inv");
    b.input("a").input("c");
    b.gate(GateType::Or, "d2", {"a", "c"});
    b.dff("F1", "a");
    b.dff("F2", "d2");
    b.gate(GateType::And, "use", {"F1", "F2"});
    b.output("use");
    const Netlist nl = b.build();
    const LearnResult r = testing::learn(nl);
    const Literal f1_1{nl.find("F1"), Val3::One};
    const Literal f2_1{nl.find("F2"), Val3::One};
    EXPECT_TRUE(r.db.implies(f1_1, f2_1));
    EXPECT_GE(r.db.frame_of(f1_1, f2_1), 1u);
    EXPECT_GE(r.stats.ff_ff_relations, 1u);
    // The converse is not true (c alone can set F2).
    EXPECT_FALSE(r.db.implies(f2_1, f1_1));
}

// g = AND(a, NOT a) is combinationally tied to 0; learned from stem `a`
// (both values imply g=0 at frame 0).
TEST(Learning, CombinationalTieFromStem) {
    NetlistBuilder b("tie0");
    b.input("a");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::And, "g", {"a", "na"});
    b.dff("F", "g");
    b.output("F");
    const Netlist nl = b.build();
    const LearnResult r = testing::learn(nl);
    EXPECT_EQ(r.ties.value(nl.find("g")), Val3::Zero);
    EXPECT_EQ(r.ties.cycle(nl.find("g")), 0u);
    // The downstream FF is sequentially tied (one frame later).
    EXPECT_EQ(r.ties.value(nl.find("F")), Val3::Zero);
    EXPECT_EQ(r.ties.cycle(nl.find("F")), 1u);
    EXPECT_GE(r.stats.ties_combinational, 1u);
    EXPECT_GE(r.stats.ties_sequential, 1u);
}

// Paper Figure-2 reconstruction: the relation G9=0 => F2=0 requires both
// I2=1 and I3=1 simultaneously and therefore cannot be learned by any
// single-stem injection (nor by injecting on G9 and implying, per the
// paper); multiple-node learning extracts it from the records
// (I2=0 => G9=1 @1) and (I3=0 => G9=1 @1).
TEST(Learning, MultipleNodeFindsExtraRelation) {
    NetlistBuilder b("fig2");
    b.input("I1").input("I2").input("I3");
    b.gate(GateType::Not, "nI2", {"I2"});
    b.gate(GateType::Not, "nI3", {"I3"});
    b.gate(GateType::Nand, "f2d", {"I2", "I3"});
    b.dff("F1", "nI2");
    b.dff("F2", "f2d");
    b.dff("F3", "nI3");
    b.gate(GateType::And, "G6", {"F1", "F2"});
    b.gate(GateType::And, "G7", {"F2", "F3"});
    b.gate(GateType::Or, "G9", {"G6", "G7"});
    b.gate(GateType::And, "obs", {"G9", "I1"});
    b.output("obs");
    const Netlist nl = b.build();

    const Literal g9_0{nl.find("G9"), Val3::Zero};
    const Literal f2_0{nl.find("F2"), Val3::Zero};

    LearnConfig no_multi;
    no_multi.multiple_node = false;
    const LearnResult base = testing::learn(nl, no_multi);
    EXPECT_FALSE(base.db.implies(g9_0, f2_0));

    const LearnResult full = testing::learn(nl);
    EXPECT_TRUE(full.db.implies(g9_0, f2_0));
    EXPECT_GE(full.stats.multi_relations, 1u);
    // F1 and F3 fall out of the same multiple-node run.
    EXPECT_TRUE(full.db.implies(g9_0, {nl.find("F1"), Val3::Zero}));
    EXPECT_TRUE(full.db.implies(g9_0, {nl.find("F3"), Val3::Zero}));
}

// Multiple-node conflict proves a sequential tie (paper's G15 mechanism):
// n = AND(F1, NOT F2, F3) with F1 = DFF(a), F2 = DFF(AND(a, nc)),
// F3 = DFF(nc), nc = NOT(c). n=1 needs a=1 and c=0 in the previous frame,
// which forces F2=1, contradicting NOT F2 — no single stem sees it.
TEST(Learning, MultipleNodeConflictProvesSequentialTie) {
    NetlistBuilder b("g15ish");
    b.input("a").input("c");
    b.gate(GateType::Not, "nc", {"c"});
    b.gate(GateType::And, "f2d", {"a", "nc"});
    b.dff("F1", "a");
    b.dff("F2", "f2d");
    b.dff("F3", "nc");
    b.gate(GateType::Not, "nF2", {"F2"});
    b.gate(GateType::And, "n", {"F1", "nF2", "F3"});
    b.output("n");
    const Netlist nl = b.build();

    LearnConfig no_multi;
    no_multi.multiple_node = false;
    const LearnResult base = testing::learn(nl, no_multi);
    EXPECT_FALSE(base.ties.is_tied(nl.find("n")));

    const LearnResult full = testing::learn(nl);
    EXPECT_EQ(full.ties.value(nl.find("n")), Val3::Zero);
    EXPECT_GE(full.ties.cycle(nl.find("n")), 1u);
    EXPECT_GE(full.stats.multi_ties, 1u);
}

// Gate equivalence defeats 3-valued pessimism and enables relations that
// are otherwise unlearnable (paper's G2/G4 mechanism, Table 2 column 3).
TEST(Learning, EquivalenceEnablesExtraRelations) {
    // a' = XOR(h, XOR(h, a)) == a, but 3-valued simulation cannot see it.
    NetlistBuilder b("eqrel");
    b.input("a").input("h");
    b.gate(GateType::Xor, "x1", {"h", "a"});
    b.gate(GateType::Xor, "aprime", {"h", "x1"});
    b.dff("F1", "a");
    b.dff("F2", "aprime");
    b.gate(GateType::And, "obs", {"F1", "F2"});
    b.output("obs");
    const Netlist nl = b.build();

    const Literal f1_1{nl.find("F1"), Val3::One};
    const Literal f2_1{nl.find("F2"), Val3::One};

    LearnConfig no_eq;
    no_eq.use_equivalences = false;
    const LearnResult base = testing::learn(nl, no_eq);
    EXPECT_FALSE(base.db.implies(f1_1, f2_1));

    const LearnResult full = testing::learn(nl);
    EXPECT_TRUE(full.db.implies(f1_1, f2_1));
    EXPECT_TRUE(full.db.implies(f2_1, f1_1));
}

// Clock classes: no relation may connect sequential elements of different
// clock domains (paper Section 3.3.2).
TEST(Learning, NoCrossDomainRelations) {
    NetlistBuilder b("dom");
    b.input("a");
    netlist::SeqAttrs dom1{};
    dom1.clock_id = 1;
    b.dff("F0", "a");
    b.dff("F1", "a", dom1);
    b.gate(GateType::And, "obs", {"F0", "F1"});
    b.output("obs");
    const Netlist nl = b.build();
    const LearnResult r = testing::learn(nl);
    for (const Relation& rel : r.db.relations()) {
        const bool lhs_seq = netlist::is_sequential(nl.type(rel.lhs.gate));
        const bool rhs_seq = netlist::is_sequential(nl.type(rel.rhs.gate));
        if (lhs_seq && rhs_seq) {
            EXPECT_EQ(nl.seq_attrs(rel.lhs.gate).clock_id, nl.seq_attrs(rel.rhs.gate).clock_id)
                << to_string(nl, rel);
        }
    }
    // Sanity: with a single domain the same structure yields F0<->F1
    // relations (they always capture the same value).
    NetlistBuilder b2("dom1");
    b2.input("a");
    b2.dff("F0", "a");
    b2.dff("F1", "a");
    b2.gate(GateType::And, "obs", {"F0", "F1"});
    b2.output("obs");
    const Netlist nl2 = b2.build();
    const LearnResult r2 = testing::learn(nl2);
    EXPECT_TRUE(r2.db.implies({nl2.find("F0"), Val3::One}, {nl2.find("F1"), Val3::One}));
}

// Set/reset handling: an unconstrained reset line means only 0 may cross
// the element; relations claiming its 1-value must not exist.
TEST(Learning, UnconstrainedResetRestrictsRelations) {
    NetlistBuilder b("srr");
    b.input("a");
    netlist::SeqAttrs rst{};
    rst.set_reset = netlist::SetReset::ResetOnly;
    rst.sr_unconstrained = true;
    b.dff("F0", "a");
    b.dff("F1", "a", rst);
    b.gate(GateType::And, "obs", {"F0", "F1"});
    b.output("obs");
    const Netlist nl = b.build();
    const LearnResult r = testing::learn(nl);
    // F0=1 => F1=1 must NOT be learned (reset can knock F1 to 0), but
    // F0=0 => F1=0 is fine (0 crosses the element).
    EXPECT_FALSE(r.db.implies({nl.find("F0"), Val3::One}, {nl.find("F1"), Val3::One}));
    EXPECT_TRUE(r.db.implies({nl.find("F0"), Val3::Zero}, {nl.find("F1"), Val3::Zero}));
}

// --- Invalid states -----------------------------------------------------------

TEST(InvalidStates, CheckerAndCounting) {
    NetlistBuilder b("inv2");
    b.input("a").input("c");
    b.gate(GateType::Or, "d2", {"a", "c"});
    b.dff("F1", "a");
    b.dff("F2", "d2");
    b.gate(GateType::And, "obs", {"F1", "F2"});
    b.output("obs");
    const Netlist nl = b.build();
    const LearnResult r = testing::learn(nl);
    const InvalidStateChecker chk(nl, r.db);
    EXPECT_GE(chk.size(), 1u);
    // F1=1 & F2=0 is the invalid combination.
    const std::vector<Val3> bad{Val3::One, Val3::Zero};
    const std::vector<Val3> good{Val3::One, Val3::One};
    const std::vector<Val3> partial{Val3::One, Val3::X};
    EXPECT_TRUE(chk.violates(bad));
    EXPECT_FALSE(chk.violates(good));
    EXPECT_FALSE(chk.violates(partial));
    EXPECT_EQ(chk.count_invalid_states(), 1u);
    // With zero known history the sequential relation may not fire.
    EXPECT_FALSE(chk.violates(bad, 0));
}

TEST(InvalidStates, DensityOfEncoding) {
    // F1 = DFF(i), F2 = DFF(i): states 01 and 10 are invalid -> density 0.5.
    NetlistBuilder b("dup");
    b.input("i");
    b.dff("F1", "i");
    b.dff("F2", "i");
    b.gate(GateType::And, "obs", {"F1", "F2"});
    b.output("obs");
    EXPECT_DOUBLE_EQ(density_of_encoding(b.build()), 0.5);

    // Independent FFs: full density.
    NetlistBuilder b2("ind");
    b2.input("i").input("j");
    b2.dff("F1", "i");
    b2.dff("F2", "j");
    b2.gate(GateType::And, "obs", {"F1", "F2"});
    b2.output("obs");
    EXPECT_DOUBLE_EQ(density_of_encoding(b2.build()), 1.0);
}

// --- Soundness oracles over random circuits -----------------------------------

class LearningSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LearningSoundness, RelationsHoldInAllDeepEnoughStates) {
    const std::uint64_t seed = GetParam();
    const Netlist nl = testing::random_circuit(seed, 3, 5, 14);
    LearnConfig cfg;
    cfg.max_frames = 6;
    const LearnResult r = testing::learn(nl, cfg);

    const sim::CombEngine engine(nl);
    const auto inputs = nl.inputs();
    const std::uint64_t n_states = 1ULL << nl.seq_elements().size();
    const std::uint64_t n_inputs = 1ULL << inputs.size();

    // Group relations by frame tag so each image set is computed once.
    std::vector<Relation> rels = r.db.relations();
    for (std::uint32_t t = 0; t <= cfg.max_frames; ++t) {
        bool any = false;
        for (const Relation& rel : rels) any = any || rel.frame == t;
        if (!any) continue;
        const std::vector<bool> valid = testing::image_set(nl, t);
        for (std::uint64_t s = 0; s < n_states; ++s) {
            if (!valid[s]) continue;
            for (std::uint64_t u = 0; u < n_inputs; ++u) {
                const auto vals = testing::eval_frame(nl, engine, s, u);
                for (const Relation& rel : rels) {
                    if (rel.frame != t) continue;
                    if (vals[rel.lhs.gate] == rel.lhs.value) {
                        EXPECT_EQ(vals[rel.rhs.gate], rel.rhs.value)
                            << "seed " << seed << ": " << to_string(nl, rel) << " at state "
                            << s << " input " << u;
                    }
                }
            }
        }
    }
}

TEST_P(LearningSoundness, TiesHoldInAllDeepEnoughStates) {
    const std::uint64_t seed = GetParam();
    const Netlist nl = testing::random_circuit(seed, 3, 5, 14);
    LearnConfig cfg;
    cfg.max_frames = 6;
    const LearnResult r = testing::learn(nl, cfg);

    const sim::CombEngine engine(nl);
    const auto inputs = nl.inputs();
    const std::uint64_t n_states = 1ULL << nl.seq_elements().size();
    const std::uint64_t n_inputs = 1ULL << inputs.size();

    for (const GateId g : r.ties.tied_gates()) {
        const Val3 v = r.ties.value(g);
        const std::uint32_t c = r.ties.cycle(g);
        ASSERT_LE(c, cfg.max_frames) << "seed " << seed;
        const std::vector<bool> valid = testing::image_set(nl, c);
        for (std::uint64_t s = 0; s < n_states; ++s) {
            if (!valid[s]) continue;
            for (std::uint64_t u = 0; u < n_inputs; ++u) {
                const auto vals = testing::eval_frame(nl, engine, s, u);
                EXPECT_EQ(vals[g], v) << "seed " << seed << ": tie " << nl.name_of(g)
                                      << "=" << logic::to_char(v) << " cycle " << c
                                      << " state " << s << " input " << u;
            }
        }
    }
}

TEST_P(LearningSoundness, EquivalencesAreTrueEquivalences) {
    const std::uint64_t seed = GetParam();
    const Netlist nl = testing::random_circuit(seed, 3, 5, 14);
    const EquivResult eq = find_equivalences(nl);
    const sim::CombEngine engine(nl);
    const auto inputs = nl.inputs();
    const std::uint64_t n_states = 1ULL << nl.seq_elements().size();
    const std::uint64_t n_inputs = 1ULL << inputs.size();
    for (std::uint64_t s = 0; s < n_states; ++s) {
        for (std::uint64_t u = 0; u < n_inputs; ++u) {
            const auto vals = testing::eval_frame(nl, engine, s, u);
            for (GateId g = 0; g < nl.size(); ++g) {
                if (eq.rep[g] == netlist::kNoGate || eq.rep[g] == g) continue;
                const Val3 expect =
                    eq.inverted[g] ? logic::v3_not(vals[eq.rep[g]]) : vals[eq.rep[g]];
                EXPECT_EQ(vals[g], expect) << "seed " << seed << " gate " << nl.name_of(g);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, LearningSoundness,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- Persistence ---------------------------------------------------------

TEST(DbIO, SaveLoadRoundTrip) {
    const Netlist nl = testing::random_circuit(55, 3, 5, 14);
    const LearnResult r = testing::learn(nl);
    std::ostringstream out;
    save_learned(out, nl, r.db, r.ties);
    std::istringstream in(out.str());
    const LoadedLearned back = load_learned(in, nl);
    EXPECT_EQ(back.skipped_lines, 0u);
    EXPECT_EQ(back.db.size(), r.db.size());
    EXPECT_EQ(back.ties.count(), r.ties.count());
    for (const Relation& rel : r.db.relations()) {
        EXPECT_TRUE(back.db.implies(rel.lhs, rel.rhs)) << to_string(nl, rel);
        EXPECT_EQ(back.db.frame_of(rel.lhs, rel.rhs), rel.frame);
    }
    for (const GateId g : r.ties.tied_gates()) {
        EXPECT_EQ(back.ties.value(g), r.ties.value(g));
        EXPECT_EQ(back.ties.cycle(g), r.ties.cycle(g));
    }
}

TEST(DbIO, UnknownGatesAreSkippedNotFatal) {
    const Netlist nl = testing::random_circuit(56, 2, 2, 6);
    std::istringstream in("# seqlearn v1 x\nrel nosuch 1 f0 0 1\ntie ghost 0 0\n");
    const LoadedLearned back = load_learned(in, nl);
    EXPECT_EQ(back.skipped_lines, 2u);
    EXPECT_EQ(back.db.size(), 0u);
}

TEST(DbIO, MalformedInputThrows) {
    const Netlist nl = testing::random_circuit(57, 2, 2, 6);
    std::istringstream bad1("rel f0 1\n");
    EXPECT_THROW(load_learned(bad1, nl), std::runtime_error);
    std::istringstream bad2("frob x y\n");
    EXPECT_THROW(load_learned(bad2, nl), std::runtime_error);
    std::istringstream bad3("tie f0 2 0\n");
    EXPECT_THROW(load_learned(bad3, nl), std::runtime_error);
}

// Learning must be deterministic.
TEST(Learning, Deterministic) {
    const Netlist nl = testing::random_circuit(123, 3, 4, 12);
    const LearnResult a = testing::learn(nl);
    const LearnResult bb = testing::learn(nl);
    EXPECT_EQ(a.db.size(), bb.db.size());
    EXPECT_EQ(a.ties.count(), bb.ties.count());
    EXPECT_EQ(a.stats.ff_ff_relations, bb.stats.ff_ff_relations);
    EXPECT_EQ(a.stats.gate_ff_relations, bb.stats.gate_ff_relations);
}

// Frame-depth ablation: deeper simulation never loses knowledge. Raw counts
// are not monotone (a gate proven tied stops participating in relations),
// so the check is subsumption: everything shallow learning knew is either
// still in the deep database or absorbed by a deep tie.
TEST(Learning, DeeperFramesSubsumeShallowKnowledge) {
    const Netlist nl = testing::random_circuit(77, 3, 5, 16);
    LearnConfig shallow;
    shallow.max_frames = 1;
    LearnConfig deep;
    deep.max_frames = 10;
    const LearnResult a = testing::learn(nl, shallow);
    const LearnResult bb = testing::learn(nl, deep);
    for (const Relation& rel : a.db.relations()) {
        EXPECT_TRUE(bb.db.implies(rel.lhs, rel.rhs) || bb.ties.is_tied(rel.lhs.gate) ||
                    bb.ties.is_tied(rel.rhs.gate))
            << to_string(nl, rel);
    }
    for (const GateId g : a.ties.tied_gates()) {
        EXPECT_EQ(bb.ties.value(g), a.ties.value(g)) << nl.name_of(g);
        EXPECT_LE(bb.ties.cycle(g), a.ties.cycle(g)) << nl.name_of(g);
    }
    // Depth 1 can only see frame-0 (combinational) relations.
    EXPECT_EQ(a.stats.ff_ff_relations + a.stats.gate_ff_relations, 0u);
}

}  // namespace
}  // namespace seqlearn::core
