// ATPG-as-a-service: protocol, cache, concurrency, and snapshot contracts.
//
// What is pinned here:
//   * K ∈ {2, 8} concurrent socket clients on ONE cached Design produce
//     learn relation-hashes and ATPG campaign digests bit-identical to a
//     serial api::Session run with the same configuration — the serving
//     layer adds scheduling, never different results. (TSan CI runs this.)
//   * LRU eviction under a tight byte cap keeps the service serving:
//     evicted digests get the structured unknown_design error and a
//     re-load repopulates the entry.
//   * Hostile input — malformed JSON, non-object frames, oversized lines,
//     unknown commands, bad digests — yields structured protocol errors on
//     a connection that stays usable; nothing crashes, nothing hangs.
//   * The binary snapshot format round-trips byte-identically
//     (save → load → re-save) and refuses a wrong netlist digest.
//   * Graceful drain: a request in flight when the server stops still gets
//     a response (a Cancelled outcome), not a dropped connection.
//   * The warm path is fast: a previously-seen 100k-gate circuit answers a
//     cached load + stats in milliseconds (wall-clock bound is asserted in
//     optimized, unsanitized builds only).

#include "server/server.hpp"

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "core/db_io.hpp"
#include "core/impl_db.hpp"
#include "netlist/bench_io.hpp"
#include "server/json.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/suite.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace seqlearn {
namespace {

using server::JsonValue;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Minimal blocking protocol client: one connection, line-framed rpc.
class Client {
public:
    explicit Client(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
                  0);
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    void send_raw(std::string_view text) {
        std::size_t sent = 0;
        while (sent < text.size()) {
            const ssize_t n =
                ::send(fd_, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
            if (n <= 0) {
                ADD_FAILURE() << "send failed";
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    /// Read one '\n'-terminated response line ("" on EOF).
    std::string read_line() {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n <= 0) return {};
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /// Send one frame, parse the one response (Null value on any failure).
    JsonValue rpc(std::string frame) {
        frame += '\n';
        send_raw(frame);
        const std::string line = read_line();
        EXPECT_FALSE(line.empty()) << "connection dropped instead of responding";
        if (line.empty()) return JsonValue();
        std::string err;
        auto doc = JsonValue::parse(line, &err);
        EXPECT_TRUE(doc.has_value()) << err << " in: " << line;
        return doc ? *doc : JsonValue();
    }

private:
    int fd_ = -1;
    std::string buf_;
};

/// {"cmd": "load", "bench": "..."} with the bench text escaped.
std::string load_frame(const std::string& bench, const std::string& name) {
    return "{\"cmd\": \"load\", \"name\": \"" + name + "\", \"bench\": \"" +
           server::json_escape(bench) + "\"}";
}

std::string outcome_status(const JsonValue& response) {
    const JsonValue* outcome = response.get("outcome");
    return outcome ? outcome->get_string("status") : std::string();
}

workload::GenParams drain_params(const char* name, std::uint64_t seed) {
    workload::GenParams p;
    p.name = name;
    p.n_gates = 400;
    p.n_ffs = 40;
    p.n_inputs = 12;
    p.n_outputs = 8;
    p.seed = seed;
    return p;
}

// --- concurrency: server results == serial Session results -----------------

TEST(ServerDeterminism, ConcurrentClientsMatchSerialGolden) {
    for (const char* circuit : {"s27", "fig1x"}) {
        const netlist::Netlist nl = workload::suite_circuit(circuit);
        const std::string bench = netlist::write_bench_string(nl);

        // Serial golden with the exact configuration the service runs:
        // default learn, then ATPG mode=forbidden / backtracks=30 with
        // count_c_cycle_redundant (the CLI's learned-mode setup).
        api::SessionConfig serial_cfg;
        serial_cfg.threads = 1;
        api::Session serial(netlist::Netlist(nl), std::move(serial_cfg));
        const std::string learn_golden =
            server::hex_u64(core::relation_hash(serial.learn().db));
        atpg::AtpgConfig acfg;
        acfg.mode = atpg::LearnMode::ForbiddenValue;
        acfg.backtrack_limit = 30;
        acfg.count_c_cycle_redundant = true;
        const std::string campaign_golden =
            server::hex_u64(api::campaign_digest(serial.atpg(acfg)));

        server::ServerConfig cfg;
        cfg.service.max_sessions = 8;
        cfg.service.threads = 1;
        server::Server srv(cfg);
        std::string err;
        ASSERT_TRUE(srv.start(&err)) << err;

        for (const unsigned k : {2u, 8u}) {
            std::vector<std::string> learn_hashes(k), campaign_digests(k);
            std::vector<std::thread> clients;
            clients.reserve(k);
            for (unsigned t = 0; t < k; ++t) {
                clients.emplace_back([&, t] {
                    Client c(srv.port());
                    const JsonValue loaded = c.rpc(load_frame(bench, "c"));
                    EXPECT_TRUE(loaded.get_bool("ok"));
                    const std::string digest = loaded.get_string("design");
                    if (digest.empty()) return;
                    // force=true: every client computes its own learn (cold
                    // path), so K runs race through the real engines — the
                    // warm path would trivially dedupe them.
                    const JsonValue learned = c.rpc(
                        "{\"cmd\": \"learn\", \"force\": true, \"design\": \"" +
                        digest + "\"}");
                    EXPECT_TRUE(learned.get_bool("ok"));
                    EXPECT_EQ(outcome_status(learned), "completed");
                    learn_hashes[t] = learned.get_string("relation_hash");
                    const JsonValue campaign =
                        c.rpc("{\"cmd\": \"atpg\", \"design\": \"" + digest + "\"}");
                    EXPECT_TRUE(campaign.get_bool("ok"));
                    campaign_digests[t] = campaign.get_string("campaign_digest");
                });
            }
            for (std::thread& t : clients) t.join();
            for (unsigned t = 0; t < k; ++t) {
                EXPECT_EQ(learn_hashes[t], learn_golden)
                    << circuit << " client " << t << " of " << k;
                EXPECT_EQ(campaign_digests[t], campaign_golden)
                    << circuit << " client " << t << " of " << k;
            }
        }
        srv.stop();
    }
}

// Warm requests (snapshot attached by the first learn) must serve the same
// hashes as cold ones.
TEST(ServerDeterminism, WarmSnapshotServesIdenticalHashes) {
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("fig1x"));
    server::Server srv{server::ServerConfig{}};
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    Client c(srv.port());
    const std::string digest = c.rpc(load_frame(bench, "fig1x")).get_string("design");
    ASSERT_FALSE(digest.empty());
    const JsonValue cold =
        c.rpc("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}");
    ASSERT_TRUE(cold.get_bool("ok"));
    EXPECT_FALSE(cold.get_bool("warm"));

    const JsonValue warm =
        c.rpc("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}");
    ASSERT_TRUE(warm.get_bool("ok"));
    EXPECT_TRUE(warm.get_bool("warm"));
    EXPECT_EQ(warm.get_string("relation_hash"), cold.get_string("relation_hash"));
    EXPECT_EQ(warm.get_number("relations"), cold.get_number("relations"));

    // Warm ATPG rides the snapshot instead of re-learning.
    const JsonValue atpg = c.rpc("{\"cmd\": \"atpg\", \"design\": \"" + digest + "\"}");
    EXPECT_TRUE(atpg.get_bool("ok"));
    EXPECT_TRUE(atpg.get_bool("warm"));
    EXPECT_FALSE(atpg.get_string("campaign_digest").empty());

    // stats surfaces the snapshot's relation hash too.
    const JsonValue stats = c.rpc("{\"cmd\": \"stats\", \"design\": \"" + digest + "\"}");
    const JsonValue* learned = stats.get("learned");
    ASSERT_NE(learned, nullptr);
    EXPECT_EQ(learned->get_string("relation_hash"), cold.get_string("relation_hash"));
    srv.stop();
}

// --- cache eviction under a tight cap --------------------------------------

TEST(ServerCache, EvictionUnderTightCapKeepsServing) {
    // A cap small enough that only the MRU entry ever survives.
    server::ServiceConfig cfg;
    cfg.cache.max_bytes = 1;
    server::Service svc(cfg);

    const std::string bench_a =
        netlist::write_bench_string(workload::suite_circuit("s27"));
    const std::string bench_b =
        netlist::write_bench_string(workload::suite_circuit("fig1x"));

    const auto load = [&](const std::string& bench, const std::string& name) {
        auto doc = JsonValue::parse(svc.handle(load_frame(bench, name)), nullptr);
        EXPECT_TRUE(doc && doc->get_bool("ok"));
        return doc ? doc->get_string("design") : std::string();
    };
    const std::string digest_a = load(bench_a, "a");
    const std::string digest_b = load(bench_b, "b");  // evicts a

    // The evicted digest gets the structured unknown_design error...
    auto miss = JsonValue::parse(
        svc.handle("{\"cmd\": \"learn\", \"design\": \"" + digest_a + "\"}"), nullptr);
    ASSERT_TRUE(miss.has_value());
    EXPECT_FALSE(miss->get_bool("ok"));
    EXPECT_EQ(miss->get_number("code"), 2);
    ASSERT_NE(miss->get("error"), nullptr);
    EXPECT_EQ(miss->get("error")->get_string("class"), "unknown_design");

    // ...the surviving entry still serves...
    auto ok_b = JsonValue::parse(
        svc.handle("{\"cmd\": \"learn\", \"design\": \"" + digest_b + "\"}"), nullptr);
    ASSERT_TRUE(ok_b.has_value());
    EXPECT_TRUE(ok_b->get_bool("ok"));

    // ...and a re-load of the evicted circuit repopulates the same digest.
    EXPECT_EQ(load(bench_a, "a"), digest_a);
    auto ok_a = JsonValue::parse(
        svc.handle("{\"cmd\": \"learn\", \"design\": \"" + digest_a + "\"}"), nullptr);
    ASSERT_TRUE(ok_a.has_value());
    EXPECT_TRUE(ok_a->get_bool("ok"));

    auto stats = JsonValue::parse(svc.handle("{\"cmd\": \"stats\"}"), nullptr);
    ASSERT_TRUE(stats.has_value());
    const JsonValue* srv_section = stats->get("server");
    ASSERT_NE(srv_section, nullptr);
    const JsonValue* cache = srv_section->get("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->get_number("evictions"), 2);  // a evicted, then b
    EXPECT_EQ(cache->get_number("entries"), 1);
}

// --- hostile input ----------------------------------------------------------

TEST(ServerRobustness, MalformedFramesGetStructuredErrors) {
    server::ServerConfig cfg;
    cfg.max_frame_bytes = 2048;  // tiny, to exercise the oversize path
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;
    Client c(srv.port());

    // Malformed JSON.
    JsonValue r = c.rpc("this is not json");
    EXPECT_FALSE(r.get_bool("ok"));
    EXPECT_EQ(r.get_number("code"), 3);
    ASSERT_NE(r.get("error"), nullptr);
    EXPECT_EQ(r.get("error")->get_string("class"), "frame");

    // A JSON document that is not an object.
    r = c.rpc("[1, 2, 3]");
    EXPECT_FALSE(r.get_bool("ok"));
    EXPECT_EQ(r.get_number("code"), 3);

    // Missing / unknown command.
    r = c.rpc("{}");
    EXPECT_EQ(r.get_number("code"), 2);
    r = c.rpc("{\"cmd\": \"frobnicate\"}");
    EXPECT_EQ(r.get_number("code"), 2);

    // Bad digest text, then a digest that was never loaded.
    r = c.rpc("{\"cmd\": \"learn\", \"design\": \"zzzz\"}");
    EXPECT_EQ(r.get_number("code"), 2);
    r = c.rpc("{\"cmd\": \"learn\", \"design\": \"00000000deadbeef\"}");
    ASSERT_NE(r.get("error"), nullptr);
    EXPECT_EQ(r.get("error")->get_string("class"), "unknown_design");

    // Unparseable bench text is a structured parse error with diagnostics.
    r = c.rpc("{\"cmd\": \"load\", \"bench\": \"y = AND(a, b)\\nnonsense line\"}");
    EXPECT_FALSE(r.get_bool("ok"));
    EXPECT_EQ(r.get_number("code"), 3);
    ASSERT_NE(r.get("error"), nullptr);
    EXPECT_NE(r.get("error")->get("diagnostics"), nullptr);

    // An oversized frame: structured error, line discarded, connection
    // still usable afterwards.
    std::string big = "{\"cmd\": \"load\", \"bench\": \"";
    big.append(8192, 'x');
    big += "\"}\n";
    c.send_raw(big);
    const std::string line = c.read_line();
    ASSERT_FALSE(line.empty());
    auto over = JsonValue::parse(line, nullptr);
    ASSERT_TRUE(over.has_value());
    EXPECT_EQ(over->get_number("code"), 3);
    ASSERT_NE(over->get("error"), nullptr);
    EXPECT_EQ(over->get("error")->get_string("class"), "frame");

    r = c.rpc("{\"cmd\": \"stats\"}");
    EXPECT_TRUE(r.get_bool("ok")) << "connection unusable after oversized frame";
    srv.stop();
}

// --- graceful drain and cancellation ----------------------------------------

TEST(ServerShutdown, InFlightRequestGetsResponseNotDroppedConnection) {
    // A circuit whose learn comfortably outlives the stop() below, so the
    // drain lands mid-run (and "completed" stays an accepted race outcome).
    const std::string bench =
        netlist::write_bench_string(workload::generate(drain_params("drain", 11)));

    server::ServerConfig cfg;
    cfg.service.threads = 1;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    Client c(srv.port());
    const std::string digest = c.rpc(load_frame(bench, "drain")).get_string("design");
    ASSERT_FALSE(digest.empty());

    std::string status;
    bool got_response = false;
    std::thread in_flight([&] {
        const JsonValue r = c.rpc("{\"cmd\": \"learn\", \"force\": true, "
                                  "\"design\": \"" + digest + "\", \"id\": \"slow\"}");
        got_response = r.is_object();
        status = outcome_status(r);
    });
    // Wait until the request is actually inside the service, then stop.
    while (srv.service().active_requests() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    srv.stop();
    in_flight.join();

    EXPECT_TRUE(got_response) << "drain dropped the connection";
    // Almost always "cancelled"; "completed" only if the run won the race.
    EXPECT_TRUE(status == "cancelled" || status == "completed") << status;
}

TEST(ServerShutdown, CancelRequestStopsARunById) {
    const std::string bench =
        netlist::write_bench_string(workload::generate(drain_params("cancelme", 12)));
    server::ServerConfig cfg;
    cfg.service.threads = 1;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    Client worker(srv.port());
    const std::string digest =
        worker.rpc(load_frame(bench, "cancelme")).get_string("design");
    ASSERT_FALSE(digest.empty());

    std::string status;
    std::thread in_flight([&] {
        const JsonValue r =
            worker.rpc("{\"cmd\": \"learn\", \"force\": true, \"design\": \"" +
                       digest + "\", \"id\": \"job-1\"}");
        status = outcome_status(r);
    });
    while (srv.service().active_requests() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Cross-connection cancel by request id.
    Client controller(srv.port());
    const JsonValue cancelled =
        controller.rpc("{\"cmd\": \"cancel\", \"target\": \"job-1\"}");
    EXPECT_TRUE(cancelled.get_bool("ok"));
    in_flight.join();
    EXPECT_TRUE(status == "cancelled" || status == "completed") << status;
    srv.stop();
}

// --- SAT backend over the protocol ------------------------------------------

TEST(ServerSatBackend, SatRequestWithDeadlineBudgetGetsDefinitiveVerdicts) {
    server::Service svc{server::ServiceConfig{}};
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("fig1x"));
    auto loaded = JsonValue::parse(svc.handle(load_frame(bench, "fig1x")), nullptr);
    ASSERT_TRUE(loaded && loaded->get_bool("ok"));
    const std::string digest = loaded->get_string("design");

    // backend=sat sends every post-fault-sim target through the CNF prover;
    // the generous deadline exists to pin the budget plumbing, not to trip.
    const std::string frame =
        "{\"cmd\": \"atpg\", \"design\": \"" + digest +
        "\", \"backend\": \"sat\", \"sat_frames\": 4, \"deadline_ms\": 60000}";
    auto r = JsonValue::parse(svc.handle(frame), nullptr);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->get_bool("ok"));
    EXPECT_EQ(r->get_string("backend"), "sat");
    EXPECT_EQ(outcome_status(*r), "completed");
    // Acceptance: a completed SAT-backed campaign leaves nothing aborted —
    // every fault is detected or carries an untestability proof.
    EXPECT_EQ(r->get_number("aborted"), 0);
    EXPECT_GT(r->get_number("sat_targeted"), 0);

    // Same request again: identical campaign digest (the SAT phase is
    // deterministic, and warm/cold learned state does not affect it).
    auto again = JsonValue::parse(svc.handle(frame), nullptr);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->get_string("campaign_digest"), r->get_string("campaign_digest"));

    // A near-zero deadline must yield a structured outcome — completed if
    // the run wins the race, deadline otherwise — never a hang or a dropped
    // response.
    auto tight = JsonValue::parse(
        svc.handle("{\"cmd\": \"atpg\", \"design\": \"" + digest +
                   "\", \"backend\": \"sat\", \"sat_frames\": 4, "
                   "\"deadline_ms\": 1}"),
        nullptr);
    ASSERT_TRUE(tight.has_value());
    const std::string tight_status = outcome_status(*tight);
    EXPECT_TRUE(tight_status == "completed" || tight_status == "deadline")
        << tight_status;
}

TEST(ServerSatBackend, UnknownBackendIsAStructuredUsageError) {
    server::Service svc{server::ServiceConfig{}};
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("s27"));
    auto loaded = JsonValue::parse(svc.handle(load_frame(bench, "s27")), nullptr);
    ASSERT_TRUE(loaded && loaded->get_bool("ok"));
    const std::string digest = loaded->get_string("design");

    auto r = JsonValue::parse(
        svc.handle("{\"cmd\": \"atpg\", \"design\": \"" + digest +
                   "\", \"backend\": \"dpll\"}"),
        nullptr);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->get_bool("ok"));
    EXPECT_EQ(r->get_number("code"), 2);
    ASSERT_NE(r->get("error"), nullptr);
    EXPECT_EQ(r->get("error")->get_string("class"), "usage");

    // The service stays usable: a well-formed request on the same design
    // still answers.
    auto ok = JsonValue::parse(
        svc.handle("{\"cmd\": \"atpg\", \"design\": \"" + digest +
                   "\", \"backend\": \"auto\"}"),
        nullptr);
    ASSERT_TRUE(ok.has_value());
    EXPECT_TRUE(ok->get_bool("ok"));
    EXPECT_EQ(ok->get_string("backend"), "auto");
}

// --- binary snapshots --------------------------------------------------------

TEST(BinarySnapshot, SaveLoadResaveIsByteIdentical) {
    const netlist::Netlist nl = workload::suite_circuit("fig1x");
    api::Session session{netlist::Netlist(nl)};
    const core::LearnResult& r = session.learn();
    ASSERT_GT(r.db.size() + r.ties.count(), 0u);

    std::ostringstream first;
    core::save_learned_binary(first, nl, r.db, r.ties);
    std::istringstream in(first.str());
    ASSERT_TRUE(core::is_binary_db(in));
    const core::LoadedLearned loaded = core::load_learned_binary(in, nl);
    EXPECT_EQ(loaded.db.size(), r.db.size());
    EXPECT_EQ(loaded.ties.count(), r.ties.count());
    EXPECT_EQ(loaded.skipped_lines, 0u);

    std::ostringstream second;
    core::save_learned_binary(second, nl, loaded.db, loaded.ties);
    EXPECT_EQ(first.str(), second.str()) << "binary snapshot not canonical";
    EXPECT_EQ(core::relation_hash(loaded.db), core::relation_hash(r.db));
}

TEST(BinarySnapshot, RejectsWrongNetlistDigestAndTruncation) {
    const netlist::Netlist nl = workload::suite_circuit("fig1x");
    api::Session session{netlist::Netlist(nl)};
    const core::LearnResult& r = session.learn();
    std::ostringstream out;
    core::save_learned_binary(out, nl, r.db, r.ties);

    // The same bytes against a different circuit: digest mismatch, rejected
    // wholesale (no silent partial application like the text loader's
    // name-keyed skips).
    const netlist::Netlist other = workload::suite_circuit("s27");
    std::istringstream in(out.str());
    EXPECT_THROW((void)core::load_learned_binary(in, other), std::runtime_error);

    // Truncation is rejected too.
    std::istringstream truncated(out.str().substr(0, out.str().size() / 2));
    EXPECT_THROW((void)core::load_learned_binary(truncated, nl), std::runtime_error);
}

// --- warm-path latency -------------------------------------------------------

TEST(ServerWarmPath, PreviouslySeen100kGateCircuitAnswersStatsInMilliseconds) {
    if (kSanitized) GTEST_SKIP() << "wall-clock bound is meaningless under sanitizers";
#ifndef NDEBUG
    GTEST_SKIP() << "wall-clock bound asserted in optimized builds only";
#else
    workload::GenParams p;
    p.name = "big100k";
    p.n_gates = 100000;
    p.n_ffs = 2000;
    p.n_inputs = 64;
    p.n_outputs = 32;
    p.seed = 7;
    const std::string bench = netlist::write_bench_string(workload::generate(p));

    server::Server srv{server::ServerConfig{}};
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;
    Client c(srv.port());

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const JsonValue cold = c.rpc(load_frame(bench, "big100k"));
    const auto cold_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() - t0);
    ASSERT_TRUE(cold.get_bool("ok"));
    EXPECT_FALSE(cold.get_bool("cached"));
    const std::string digest = cold.get_string("design");

    // Re-sending the same bytes hits the content-addressed entry: no
    // re-compile (untimed — this round trip re-ships the multi-MB bench
    // text, so its cost is transport + hash, not the cache's).
    const JsonValue warm = c.rpc(load_frame(bench, "big100k"));
    EXPECT_TRUE(warm.get_bool("cached"));

    // The acceptance bound: a warm stats request on a previously-seen
    // 100k-gate circuit answers in < 250 ms (the cold load paid the full
    // parse+compile, typically seconds). The headroom over the typical
    // single-digit-ms answer absorbs CPU oversubscription when ctest -j
    // runs several heavy suites alongside this one.
    const auto t1 = clock::now();
    const JsonValue stats = c.rpc("{\"cmd\": \"stats\", \"design\": \"" + digest + "\"}");
    const auto warm_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() - t1);
    EXPECT_TRUE(stats.get_bool("ok"));
    EXPECT_GE(stats.get_number("gates"), 100000);
    EXPECT_LT(warm_ms.count(), 250) << "cold was " << cold_ms.count() << " ms";
    EXPECT_GT(cold_ms.count(), warm_ms.count());
    srv.stop();
#endif
}

// --- connection hardening ---------------------------------------------------

/// Raw socket with no protocol smarts — the hostile-client half of the
/// chaos harness (slow loris, torn frames, mid-response disconnects).
class RawSocket {
public:
    /// `tiny_recv_buffer` shrinks SO_RCVBUF before connecting, so a server
    /// writing to a non-reading peer blocks after a few KB instead of after
    /// megabytes — makes write-deadline tests deterministic and fast.
    explicit RawSocket(std::uint16_t port, bool tiny_recv_buffer = false) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        if (tiny_recv_buffer) {
            const int few = 2048;
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &few, sizeof few);
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
                  0);
    }
    ~RawSocket() { close_now(); }
    RawSocket(const RawSocket&) = delete;
    RawSocket& operator=(const RawSocket&) = delete;

    void send_bytes(std::string_view bytes) {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                     MSG_NOSIGNAL);
            if (n <= 0) return;
            sent += static_cast<std::size_t>(n);
        }
    }
    void close_now() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }
    /// recv() once with a timeout; "" on EOF/timeout. Big enough for one
    /// whole response line in practice (loopback delivers it in one read).
    std::string recv_some(int timeout_ms) {
        pollfd pfd{fd_, POLLIN, 0};
        if (::poll(&pfd, 1, timeout_ms) <= 0) return {};
        char chunk[8192];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        return n > 0 ? std::string(chunk, static_cast<std::size_t>(n)) : std::string();
    }
    /// True when the peer closed: recv returns 0 within the timeout.
    bool reached_eof(int timeout_ms) {
        pollfd pfd{fd_, POLLIN, 0};
        if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
        char chunk[256];
        return ::recv(fd_, chunk, sizeof chunk, 0) == 0;
    }

private:
    int fd_ = -1;
};

// A stalled mid-frame client (the slow-loris shape) is reaped at the idle
// deadline, and a well-behaved client served concurrently gets results
// bit-identical to an unmolested serial run.
TEST(ServerHardening, SlowLorisIsReapedWhileGoodClientsServeIdentically) {
    const netlist::Netlist nl = workload::suite_circuit("fig1x");
    const std::string bench = netlist::write_bench_string(nl);

    api::SessionConfig serial_cfg;
    serial_cfg.threads = 1;
    api::Session serial(netlist::Netlist(nl), std::move(serial_cfg));
    const std::string learn_golden =
        server::hex_u64(core::relation_hash(serial.learn().db));

    server::ServerConfig cfg;
    cfg.idle_timeout = std::chrono::milliseconds(200);
    cfg.service.threads = 1;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    // The slow loris: half a frame, then silence.
    RawSocket loris(srv.port());
    loris.send_bytes("{\"cmd\": \"lear");

    // Meanwhile a good client does real work on another connection.
    Client good(srv.port());
    const std::string digest = good.rpc(load_frame(bench, "fig1x")).get_string("design");
    ASSERT_FALSE(digest.empty());
    const JsonValue learned =
        good.rpc("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}");
    EXPECT_TRUE(learned.get_bool("ok"));
    EXPECT_EQ(learned.get_string("relation_hash"), learn_golden)
        << "a stalled peer must not perturb other clients' results";

    // The loris is reaped within the deadline (plus scheduling headroom).
    EXPECT_TRUE(loris.reached_eof(5000))
        << "stalled connection must be closed by the idle deadline";

    // `good` may have been idle-reaped too while we waited (the deadline
    // applies to every connection) — read the counters on a fresh one.
    Client fresh(srv.port());
    const JsonValue stats = fresh.rpc("{\"cmd\": \"stats\"}");
    const JsonValue* server_obj = stats.get("server");
    ASSERT_NE(server_obj, nullptr);
    const JsonValue* conns = server_obj->get("connections");
    ASSERT_NE(conns, nullptr) << "stats must surface transport counters";
    EXPECT_GE(conns->get_number("idle_reaped"), 1.0);
    EXPECT_GE(conns->get_number("accepted"), 2.0);
    srv.stop();
}

// A client that sends a heavy request and disconnects before the response
// leaves the server intact for everyone else.
TEST(ServerHardening, MidResponseDisconnectLeavesServerServing) {
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("fig1x"));
    server::ServerConfig cfg;
    cfg.service.threads = 1;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    std::string digest;
    {
        Client setup(srv.port());
        digest = setup.rpc(load_frame(bench, "fig1x")).get_string("design");
        ASSERT_FALSE(digest.empty());
    }
    {
        // Fire a learn and slam the connection before the response can be
        // written. The server's send fails; nothing may crash or leak.
        RawSocket rude(srv.port());
        rude.send_bytes("{\"cmd\": \"learn\", \"force\": true, \"design\": \"" +
                        digest + "\"}\n");
        rude.close_now();
    }
    // A torn frame (half a JSON object, then EOF) on another connection.
    {
        RawSocket torn(srv.port());
        torn.send_bytes("{\"cmd\": \"stats\", \"desi");
        torn.close_now();
    }
    // The service keeps answering correctly afterwards.
    Client good(srv.port());
    const JsonValue learned =
        good.rpc("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}");
    EXPECT_TRUE(learned.get_bool("ok"));
    EXPECT_FALSE(learned.get_string("relation_hash").empty());
    srv.stop();
}

// Connections past --max-conns get one structured overloaded response.
TEST(ServerHardening, ConnectionCapAnswersOverloadedAndCloses) {
    server::ServerConfig cfg;
    cfg.max_conns = 2;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    Client a(srv.port());
    Client b(srv.port());
    // Make sure both connections are registered before the third arrives.
    EXPECT_TRUE(a.rpc("{\"cmd\": \"stats\"}").get_bool("ok"));
    EXPECT_TRUE(b.rpc("{\"cmd\": \"stats\"}").get_bool("ok"));

    RawSocket c(srv.port());
    const std::string line = c.recv_some(2000);
    ASSERT_FALSE(line.empty()) << "capped connection must get a response, not a RST";
    std::string perr;
    const auto doc = JsonValue::parse(
        line.substr(0, line.find('\n')), &perr);
    ASSERT_TRUE(doc.has_value()) << perr << " in: " << line;
    EXPECT_FALSE(doc->get_bool("ok"));
    EXPECT_EQ(doc->get_number("code"), 7.0);
    const JsonValue* eobj = doc->get("error");
    ASSERT_NE(eobj, nullptr);
    EXPECT_EQ(eobj->get_string("class"), "overloaded");
    EXPECT_TRUE(c.reached_eof(2000));

    // The registered connections still serve, and the rejection is counted.
    const JsonValue stats = a.rpc("{\"cmd\": \"stats\"}");
    ASSERT_TRUE(stats.get_bool("ok"));
    const JsonValue* conns = stats.get("server")->get("connections");
    ASSERT_NE(conns, nullptr);
    EXPECT_GE(conns->get_number("rejected_overloaded"), 1.0);
    srv.stop();
}

// An armed SockSend failpoint forces a short send mid-response; the resend
// loop must still deliver the frame byte-identically.
TEST(ServerHardening, InjectedShortSendStillDeliversExactResponse) {
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("s27"));
    exec::FailurePoint fp;
    server::ServerConfig cfg;
    cfg.failpoint = &fp;
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    Client c(srv.port());
    const JsonValue clean = c.rpc(load_frame(bench, "s27"));
    ASSERT_TRUE(clean.get_bool("ok"));
    const std::string digest = clean.get_string("design");

    // Every response from here on starts with an injected 1-byte send.
    for (int nth = 1; nth <= 3; ++nth) {
        fp.arm(exec::FailSite::SockSend, 1);
        const JsonValue again = c.rpc(load_frame(bench, "s27"));
        EXPECT_TRUE(again.get_bool("ok")) << "short send broke framing, nth " << nth;
        EXPECT_EQ(again.get_string("design"), digest);
        EXPECT_TRUE(again.get_bool("cached"));
        EXPECT_GT(fp.hits(exec::FailSite::SockSend), 0u);
    }
    fp.disarm();
    srv.stop();
}

// A client that reads nothing while the server owes it a response trips the
// write deadline instead of pinning the connection thread forever.
TEST(ServerHardening, WriteDeadlineReapsNonReadingClient) {
    server::ServerConfig cfg;
    cfg.write_timeout = std::chrono::milliseconds(300);
    server::Server srv(cfg);
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    // Fill the kernel buffers: many stats requests, never reading. The
    // greedy socket advertises a tiny receive window, so a few pending
    // responses are enough to block the server's send().
    RawSocket greedy(srv.port(), /*tiny_recv_buffer=*/true);
    std::string burst;
    for (int i = 0; i < 4000; ++i) burst += "{\"cmd\": \"stats\"}\n";
    greedy.send_bytes(burst);

    // A healthy client stays responsive throughout and eventually observes
    // the write-timeout counter tick.
    Client good(srv.port());
    bool saw_timeout = false;
    for (int i = 0; i < 100 && !saw_timeout; ++i) {
        const JsonValue stats = good.rpc("{\"cmd\": \"stats\"}");
        ASSERT_TRUE(stats.get_bool("ok"));
        const JsonValue* conns = stats.get("server")->get("connections");
        ASSERT_NE(conns, nullptr);
        saw_timeout = conns->get_number("write_timeouts") >= 1.0;
        if (!saw_timeout) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(saw_timeout)
        << "a non-reading client must trip the write deadline";
    srv.stop();
}

}  // namespace
}  // namespace seqlearn
