// Tests for the api::Session facade: caching, shared-topology wiring,
// progress observation at stem/fault/sequence granularity, cancellation,
// and equivalence with the hand-wired flow it replaces.

#include "api/session.hpp"
#include "test_helpers.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

namespace seqlearn::api {
namespace {

using netlist::Netlist;

TEST(Session, SharedTopologyBacksEveryEngine) {
    Session session(workload::suite_circuit("s27"));
    const netlist::Topology& topo = session.topology();
    EXPECT_EQ(&session.fault_simulator().topology(), &topo);
    EXPECT_EQ(&session.engine().topology(), &topo);
    EXPECT_EQ(topo.size(), session.netlist().size());
    // Repeated accessor calls return the same lazily-built instances.
    EXPECT_EQ(&session.fault_simulator(), &session.fault_simulator());
    EXPECT_EQ(&session.engine(), &session.engine());
}

TEST(Session, LearnMatchesFreeFunctionExactly) {
    const Netlist nl = testing::random_circuit(55, 6, 5, 40);
    const core::LearnResult direct = testing::learn(nl);
    Session session(nl);
    const core::LearnResult& facade = session.learn();
    EXPECT_EQ(facade.db.size(), direct.db.size());
    EXPECT_EQ(facade.ties.count(), direct.ties.count());
    EXPECT_EQ(facade.stats.ff_ff_relations, direct.stats.ff_ff_relations);
    EXPECT_EQ(facade.stats.equiv_classes, direct.stats.equiv_classes);
}

TEST(Session, LearnIsCachedUntilReconfigured) {
    Session session(workload::suite_circuit("s27"));
    const core::LearnResult& first = session.learn();
    EXPECT_EQ(&first, &session.learn());  // cached: same object
    // Snapshot before reconfiguring: learn(shallow) replaces the cached
    // result, invalidating `first`.
    const std::size_t first_relations = first.db.size();
    core::LearnConfig shallow;
    shallow.max_frames = 2;
    const core::LearnResult& second = session.learn(shallow);
    EXPECT_TRUE(session.has_learned());
    EXPECT_LE(second.db.size(), first_relations);
}

TEST(Session, DeprecatedViewShimCopiesIntoAPrivateDesign) {
    const Netlist nl = testing::random_circuit(7, 6, 5, 30);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    Session session = Session::view(nl);
#pragma GCC diagnostic pop
    // The shim no longer borrows: the Session owns a private Design built
    // from a copy, so the caller's netlist may die first (the old footgun).
    EXPECT_NE(&session.netlist(), &nl);
    EXPECT_EQ(session.netlist().size(), nl.size());
    EXPECT_GT(session.learn().db.size(), 0u);
}

TEST(Design, ManySessionsShareOneCompiledDesign) {
    const DesignPtr design = DesignBuilder(workload::suite_circuit("s27")).build();
    Session a(design);
    Session b(design);
    // No per-session re-levelization: both sessions read the same frozen
    // structure, and the handle is recoverable from either.
    EXPECT_EQ(&a.topology(), &design->topology());
    EXPECT_EQ(&b.topology(), &design->topology());
    EXPECT_EQ(a.design_ptr().get(), design.get());
    EXPECT_EQ(&a.collapsed_faults(), &b.collapsed_faults());
    EXPECT_EQ(a.learn().db.size(), b.learn().db.size());
}

TEST(Design, NullDesignIsRejected) {
    EXPECT_THROW(Session(DesignPtr{}), std::invalid_argument);
}

TEST(Design, FrozenSnapshotFeedsSessionsWithoutRelearning) {
    const Netlist nl = workload::suite_circuit("s27");
    Session producer{Netlist(nl)};
    const std::size_t relations = producer.learn().db.size();
    ASSERT_GT(relations, 0u);

    const DesignPtr design =
        DesignBuilder(Netlist(nl)).learned(producer.freeze_learned()).build();
    ASSERT_NE(design->learned(), nullptr);
    Session consumer{design};
    // Learned data is available without running learning, and learn()
    // returns the frozen snapshot's result (stable address inside the
    // shared Design, not a session-local copy).
    EXPECT_TRUE(consumer.has_learned());
    EXPECT_EQ(&consumer.learn(), &design->learned()->result());
    EXPECT_EQ(consumer.learn().db.size(), relations);
    // Re-freezing shares the existing handle instead of deep-copying.
    EXPECT_EQ(consumer.freeze_learned().get(), design->learned());

    // An ATPG campaign through the snapshot matches one through a fresh
    // session-local learn() on the same circuit.
    atpg::AtpgConfig acfg;
    acfg.mode = atpg::LearnMode::ForbiddenValue;
    acfg.backtrack_limit = 100;
    const AtpgReport& via_snapshot = consumer.atpg(acfg);
    Session fresh{Netlist(nl)};
    const AtpgReport& via_learn = fresh.atpg(acfg);
    EXPECT_TRUE(via_snapshot.used_learned);
    EXPECT_EQ(via_snapshot.list.counts().detected, via_learn.list.counts().detected);
    EXPECT_EQ(via_snapshot.outcome.tests.size(), via_learn.outcome.tests.size());
}

TEST(Design, SessionLocalLearnShadowsTheDesignSnapshot) {
    const Netlist nl = workload::suite_circuit("s27");
    Session producer{Netlist(nl)};
    const DesignPtr design =
        DesignBuilder(Netlist(nl)).learned(producer.freeze_learned()).build();
    Session session(design);
    core::LearnConfig shallow;
    shallow.max_frames = 2;
    const core::LearnResult& local = session.learn(shallow);
    EXPECT_NE(&local, &design->learned()->result());
    EXPECT_EQ(&session.learn(), &local);  // local result wins from now on
}

TEST(Design, BuilderLoadDbAttachesASharedSnapshot) {
    const Netlist nl = workload::suite_circuit("s27");
    Session producer{Netlist(nl)};
    std::ostringstream saved;
    producer.save_db(saved);

    std::istringstream in(saved.str());
    DesignBuilder builder{Netlist(nl)};
    builder.load_db(in);
    EXPECT_EQ(builder.db_skipped(), 0u);
    const DesignPtr design = builder.build();
    ASSERT_NE(design->learned(), nullptr);
    EXPECT_EQ(design->learned()->db().size(), producer.learn().db.size());
    EXPECT_EQ(design->learned()->ties().count(), producer.learn().ties.count());
}

TEST(Design, LoadDesignStreamsBenchWithDiagnostics) {
    const std::string text = netlist::write_bench_string(workload::suite_circuit("s27"));
    std::istringstream good(text);
    const DesignLoad ok = load_design(good, "s27");
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.diagnostics.ok());
    EXPECT_EQ(ok.design->netlist().size(), workload::suite_circuit("s27").size());

    std::istringstream bad(text + "broken line without parens\n");
    const DesignLoad fail = load_design(bad, "s27");
    EXPECT_FALSE(fail.ok());
    EXPECT_GT(fail.diagnostics.error_count(), 0u);
    EXPECT_EQ(fail.diagnostics.first_error()->line,
              static_cast<std::uint32_t>(std::count(text.begin(), text.end(), '\n') + 1));

    const DesignLoad missing = load_design(std::string("/nonexistent/path.bench"));
    EXPECT_FALSE(missing.ok());
    EXPECT_FALSE(missing.diagnostics.ok());
}

TEST(Session, ProgressObserverSeesEveryStage) {
    std::size_t learn_calls = 0, atpg_calls = 0, fsim_calls = 0;
    std::size_t learn_total = 0, atpg_total = 0;
    SessionConfig cfg;
    cfg.atpg.mode = atpg::LearnMode::ForbiddenValue;
    cfg.atpg.backtrack_limit = 100;
    cfg.progress = [&](const Progress& p) {
        switch (p.stage) {
            case Stage::Learn: ++learn_calls; learn_total = p.total; break;
            case Stage::Atpg: ++atpg_calls; atpg_total = p.total; break;
            case Stage::FaultSim: ++fsim_calls; break;
        }
        return true;
    };
    Session session(workload::suite_circuit("s27"), std::move(cfg));
    session.atpg();  // triggers learn() via the mode
    session.fault_sim();
    EXPECT_GT(learn_calls, 0u);
    EXPECT_EQ(learn_total, session.netlist().stems().size());
    EXPECT_GT(atpg_calls, 0u);
    EXPECT_GT(atpg_total, 0u);
    EXPECT_GT(fsim_calls, 0u);
}

TEST(Session, LearnCancellationKeepsPartialResults) {
    SessionConfig cfg;
    cfg.progress = [](const Progress& p) {
        return !(p.stage == Stage::Learn && p.done >= 2);
    };
    Session session(workload::suite_circuit("rt510a"), std::move(cfg));
    const core::LearnResult& r = session.learn();
    EXPECT_TRUE(r.stats.cancelled);
    // At most the two permitted stems were processed.
    EXPECT_LE(r.stats.stems_processed, 2u);
}

TEST(Session, CancelMidParallelLearnKeepsPartialResults) {
    // Same contract as the serial cancellation test, but with eight workers
    // speculating ahead: the observer's false return raises the atomic
    // cancel flag, uncommitted speculative stems are discarded, and only
    // the stems committed before the cut survive.
    SessionConfig cfg;
    cfg.threads = 8;
    cfg.progress = [](const Progress& p) {
        return !(p.stage == Stage::Learn && p.done >= 5);
    };
    Session session(workload::suite_circuit("rt510a"), std::move(cfg));
    const core::LearnResult& r = session.learn();
    EXPECT_TRUE(r.stats.cancelled);
    EXPECT_LE(r.stats.stems_processed, 5u);
}

TEST(Session, RequestCancelFromAnotherThreadStopsTheStage) {
    // The observer lets a helper thread call request_cancel() and joins it
    // before returning true, so the flag is provably raised concurrently
    // with the running parallel stage — the next stem boundary must stop.
    SessionConfig cfg;
    cfg.threads = 4;
    Session* session_ptr = nullptr;
    std::size_t calls = 0;
    cfg.progress = [&](const Progress& p) {
        if (p.stage == Stage::Learn && ++calls == 3) {
            std::thread canceller([&] { session_ptr->request_cancel(); });
            canceller.join();
        }
        return true;  // cancellation arrives via the flag, not the return
    };
    Session session(workload::suite_circuit("rt510a"), std::move(cfg));
    session_ptr = &session;
    const core::LearnResult& r = session.learn();
    EXPECT_TRUE(r.stats.cancelled);
    EXPECT_LE(r.stats.stems_processed, 3u);
}

TEST(Session, ExplicitThreadCountsAgreeWithSerial) {
    const Netlist nl = testing::random_circuit(55, 6, 5, 40);
    SessionConfig serial_cfg;
    serial_cfg.threads = 1;
    Session serial(nl, std::move(serial_cfg));
    SessionConfig mt_cfg;
    mt_cfg.threads = 4;
    Session mt(nl, std::move(mt_cfg));
    const core::LearnResult& a = serial.learn();
    const core::LearnResult& b = mt.learn();
    EXPECT_EQ(a.db.size(), b.db.size());
    EXPECT_EQ(a.ties.count(), b.ties.count());
    EXPECT_EQ(a.stats.multi_relations, b.stats.multi_relations);
}

TEST(Session, AtpgCancellationFlagsOutcome) {
    SessionConfig cfg;
    std::size_t seen = 0;
    cfg.progress = [&](const Progress& p) {
        if (p.stage != Stage::Atpg) return true;
        return ++seen <= 3;  // allow three faults, then cancel
    };
    Session session(workload::suite_circuit("s27"), std::move(cfg));
    atpg::AtpgConfig acfg;
    acfg.backtrack_limit = 100;
    const AtpgReport& report = session.atpg(acfg);
    EXPECT_TRUE(report.outcome.cancelled);
    EXPECT_LE(report.outcome.targeted_faults, 3u);
    // Untouched faults keep their Undetected status.
    EXPECT_GT(report.list.counts().undetected, 0u);
}

TEST(Session, FaultSimMatchesNoLearningCampaignDespiteLearnedData) {
    // A LearnMode::None campaign validates with ties cleared even when the
    // session holds learned data; fault_sim() must replay that exact model,
    // not silently upgrade to the tie-augmented one.
    Session session(workload::suite_circuit("fig1x"));
    session.learn();
    atpg::AtpgConfig cfg;
    cfg.backtrack_limit = 1000;  // mode stays None
    const AtpgReport& report = session.atpg(cfg);
    EXPECT_FALSE(report.used_learned);
    const FaultSimReport check = session.fault_sim();
    EXPECT_EQ(check.detected, report.list.counts().detected);
}

TEST(Session, FaultSimCancellationIsFlagged) {
    SessionConfig cfg;
    cfg.progress = [](const Progress& p) {
        return !(p.stage == Stage::FaultSim && p.done >= 1);
    };
    Session session(workload::suite_circuit("s27"), std::move(cfg));
    atpg::AtpgConfig acfg;
    acfg.backtrack_limit = 1000;
    session.atpg(acfg);
    const FaultSimReport report = session.fault_sim();
    EXPECT_TRUE(report.cancelled);
    EXPECT_EQ(report.sequences, 1u);
}

TEST(Session, FaultSimValidatesExplicitTestSets) {
    Session session(workload::suite_circuit("s27"));
    atpg::AtpgConfig cfg;
    cfg.backtrack_limit = 1000;
    const AtpgReport& report = session.atpg(cfg);
    const FaultSimReport all = session.fault_sim(report.outcome.tests);
    EXPECT_EQ(all.detected, report.list.counts().detected);
    EXPECT_EQ(all.sequences, report.outcome.tests.size());
    const FaultSimReport none = session.fault_sim({});
    EXPECT_EQ(none.detected, 0u);
    EXPECT_EQ(none.sequences, 0u);
    EXPECT_EQ(none.total, all.total);
}

TEST(Session, MoveKeepsEnginePointersValid) {
    Session a(workload::suite_circuit("s27"));
    a.learn();
    a.fault_simulator();
    Session b(std::move(a));
    // The moved-to session still runs the full flow over the same topology.
    atpg::AtpgConfig cfg;
    cfg.mode = atpg::LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 200;
    const AtpgReport& report = b.atpg(cfg);
    EXPECT_EQ(report.outcome.invalid_tests, 0u);
    EXPECT_EQ(&b.fault_simulator().topology(), &b.topology());
}

}  // namespace
}  // namespace seqlearn::api
