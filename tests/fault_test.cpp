// Tests for the fault substrate: universe generation, equivalence
// collapsing, the status list, and the 63-fault-parallel sequential fault
// simulator cross-validated against netlist-surgery reference simulation.

#include "fault/collapse.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/topology.hpp"
#include "sim/comb_engine.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace seqlearn::fault {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using sim::InputFrame;
using sim::InputSequence;

constexpr const char* kS27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

Netlist make_s27() { return netlist::read_bench_string(kS27, "s27"); }

InputSequence random_sequence(const Netlist& nl, std::size_t len, util::Rng& rng) {
    InputSequence seq(len, InputFrame(nl.inputs().size(), Val3::X));
    for (auto& frame : seq) {
        for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
    }
    return seq;
}

// Reference detection: simulate good and surgically-faulted netlists and
// compare primary outputs frame by frame (both binary, different).
bool reference_detects(const Netlist& nl, const Fault& f, const InputSequence& seq) {
    const Netlist bad = apply_fault_copy(nl, f);
    const auto good = sim::simulate_sequence(nl, seq);
    const auto faulty = sim::simulate_sequence(bad, seq);
    for (std::size_t t = 0; t < seq.size(); ++t) {
        for (std::size_t o = 0; o < good.outputs[t].size(); ++o) {
            const Val3 g = good.outputs[t][o];
            const Val3 b = faulty.outputs[t][o];
            if (g != Val3::X && b != Val3::X && g != b) return true;
        }
    }
    return false;
}

TEST(FaultUniverse, SizeMatchesStructure) {
    const Netlist nl = make_s27();
    std::size_t branch_pins = 0;
    for (GateId id = 0; id < nl.size(); ++id) {
        for (const GateId f : nl.fanins(id)) {
            if (nl.fanouts(f).size() > 1) ++branch_pins;
        }
    }
    const auto universe = fault_universe(nl);
    EXPECT_EQ(universe.size(), 2 * (nl.size() + branch_pins));
    // No duplicates.
    auto sorted = universe;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

TEST(FaultUniverse, FanoutFreePinsCarryNoFaults) {
    NetlistBuilder b("ff");
    b.input("a").input("bb");
    b.gate(GateType::And, "g", {"a", "bb"});
    b.output("g");
    const Netlist nl = b.build();
    const auto universe = fault_universe(nl);
    EXPECT_EQ(universe.size(), 6u);  // 3 gates x 2, no branch faults
    for (const Fault& f : universe) EXPECT_EQ(f.pin, kOutputPin);
}

TEST(FaultToString, Formats) {
    const Netlist nl = make_s27();
    EXPECT_EQ(to_string(nl, Fault{nl.find("G14"), kOutputPin, Val3::One}), "G14 s-a-1");
    EXPECT_EQ(to_string(nl, Fault{nl.find("G9"), 1, Val3::Zero}), "G9.in1 s-a-0");
}

TEST(Collapse, SingleAndGate) {
    NetlistBuilder b("and2");
    b.input("a").input("bb");
    b.gate(GateType::And, "g", {"a", "bb"});
    b.output("g");
    const Netlist nl = b.build();
    const CollapsedFaults cf = collapse(nl);
    EXPECT_EQ(cf.universe_size(), 6u);
    // {a0,b0,g0} collapse; a1, b1, g1 stay separate -> 4 classes.
    EXPECT_EQ(cf.size(), 4u);
    const Fault a0{nl.find("a"), kOutputPin, Val3::Zero};
    const Fault b0{nl.find("bb"), kOutputPin, Val3::Zero};
    const Fault g0{nl.find("g"), kOutputPin, Val3::Zero};
    EXPECT_EQ(cf.rep_of(a0), cf.rep_of(g0));
    EXPECT_EQ(cf.rep_of(b0), cf.rep_of(g0));
    const Fault a1{nl.find("a"), kOutputPin, Val3::One};
    const Fault g1{nl.find("g"), kOutputPin, Val3::One};
    EXPECT_NE(cf.rep_of(a1), cf.rep_of(g1));
}

TEST(Collapse, InverterChainFoldsToTwoClasses) {
    NetlistBuilder b("chain");
    b.input("a");
    b.gate(GateType::Not, "n1", {"a"});
    b.gate(GateType::Not, "n2", {"n1"});
    b.output("n2");
    const Netlist nl = b.build();
    const CollapsedFaults cf = collapse(nl);
    EXPECT_EQ(cf.universe_size(), 6u);
    EXPECT_EQ(cf.size(), 2u);
    const Fault a0{nl.find("a"), kOutputPin, Val3::Zero};
    const Fault n1_1{nl.find("n1"), kOutputPin, Val3::One};
    const Fault n2_0{nl.find("n2"), kOutputPin, Val3::Zero};
    EXPECT_EQ(cf.rep_of(a0), cf.rep_of(n1_1));
    EXPECT_EQ(cf.rep_of(a0), cf.rep_of(n2_0));
}

TEST(Collapse, NandPolarity) {
    NetlistBuilder b("nand2");
    b.input("a").input("bb");
    b.gate(GateType::Nand, "g", {"a", "bb"});
    b.output("g");
    const Netlist nl = b.build();
    const CollapsedFaults cf = collapse(nl);
    // in s-a-0 == out s-a-1 for NAND.
    const Fault a0{nl.find("a"), kOutputPin, Val3::Zero};
    const Fault g1{nl.find("g"), kOutputPin, Val3::One};
    EXPECT_EQ(cf.rep_of(a0), cf.rep_of(g1));
}

TEST(Collapse, XorHasNoEquivalences) {
    NetlistBuilder b("xor2");
    b.input("a").input("bb");
    b.gate(GateType::Xor, "g", {"a", "bb"});
    b.output("g");
    const Netlist nl = b.build();
    EXPECT_EQ(collapse(nl).size(), 6u);
}

TEST(Collapse, BranchFaultsStayDistinctFromStem) {
    // A stem feeding an AND and an OR: branch faults collapse into the
    // consumers' output faults, not into the stem fault.
    NetlistBuilder b("branch");
    b.input("a").input("bb").input("c");
    b.gate(GateType::Buf, "s", {"a"});
    b.gate(GateType::And, "g1", {"s", "bb"});
    b.gate(GateType::Or, "g2", {"s", "c"});
    b.output("g1").output("g2");
    const Netlist nl = b.build();
    const CollapsedFaults cf = collapse(nl);
    const Fault stem0{nl.find("s"), kOutputPin, Val3::Zero};
    const Fault branch_and_0{nl.find("g1"), 0, Val3::Zero};
    const Fault g1_0{nl.find("g1"), kOutputPin, Val3::Zero};
    EXPECT_EQ(cf.rep_of(branch_and_0), cf.rep_of(g1_0));
    EXPECT_NE(cf.rep_of(stem0), cf.rep_of(branch_and_0));
}

// Detection equivalence: every fault must be detected by exactly the
// sequences that detect its class representative.
TEST(Collapse, ClassMembersShareDetection) {
    const Netlist nl = make_s27();
    const CollapsedFaults cf = collapse(nl);
    const auto universe = fault_universe(nl);
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    util::Rng rng(2024);
    for (int trial = 0; trial < 4; ++trial) {
        const InputSequence seq = random_sequence(nl, 6, rng);
        for (const Fault& f : universe) {
            const Fault& rep = cf.rep_of(f);
            if (rep == f) continue;
            EXPECT_EQ(fsim.detects(seq, f), fsim.detects(seq, rep))
                << to_string(nl, f) << " vs rep " << to_string(nl, rep);
        }
    }
}

TEST(FaultList, CountsAndCoverage) {
    FaultList list({Fault{0, kOutputPin, Val3::Zero}, Fault{0, kOutputPin, Val3::One},
                    Fault{1, kOutputPin, Val3::Zero}, Fault{1, kOutputPin, Val3::One}});
    list.set_status(0, FaultStatus::Detected);
    list.set_status(1, FaultStatus::Untestable);
    list.set_status(2, FaultStatus::Aborted);
    const auto c = list.counts();
    EXPECT_EQ(c.total, 4u);
    EXPECT_EQ(c.detected, 1u);
    EXPECT_EQ(c.untestable, 1u);
    EXPECT_EQ(c.aborted, 1u);
    EXPECT_EQ(c.undetected, 1u);
    EXPECT_DOUBLE_EQ(list.fault_coverage(), 0.25);
    EXPECT_DOUBLE_EQ(list.test_coverage(), 1.0 / 3.0);
    EXPECT_EQ(list.undetected(), (std::vector<std::size_t>{3}));
    EXPECT_EQ(list.aborted(), (std::vector<std::size_t>{2}));
}

// The parallel fault simulator must agree with netlist-surgery reference
// simulation for every fault in the universe.
TEST(FaultSim, AgreesWithSurgeryReferenceOnS27) {
    const Netlist nl = make_s27();
    const auto universe = fault_universe(nl);
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    util::Rng rng(7);
    for (int trial = 0; trial < 3; ++trial) {
        const InputSequence seq = random_sequence(nl, 8, rng);
        for (const Fault& f : universe) {
            EXPECT_EQ(fsim.detects(seq, f), reference_detects(nl, f, seq))
                << to_string(nl, f) << " trial " << trial;
        }
    }
}

TEST(FaultSim, ParallelPassMatchesSerialRuns) {
    const Netlist nl = make_s27();
    const auto universe = fault_universe(nl);
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    util::Rng rng(15);
    const InputSequence seq = random_sequence(nl, 10, rng);
    // One big pass over the first 63 faults vs. per-fault runs.
    const std::size_t n = std::min<std::size_t>(universe.size(), kFaultsPerPass);
    const std::span<const Fault> chunk(universe.data(), n);
    const auto parallel = fsim.run(seq, chunk);
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(parallel[j], fsim.detects(seq, universe[j])) << to_string(nl, universe[j]);
    }
}

TEST(FaultSim, XInputsNeverProduceFalseDetections) {
    // With all-X stimuli nothing is observable, so nothing may be detected.
    const Netlist nl = make_s27();
    const auto universe = fault_universe(nl);
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    const InputSequence seq(5, InputFrame(nl.inputs().size(), Val3::X));
    for (const Fault& f : universe) {
        EXPECT_FALSE(fsim.detects(seq, f)) << to_string(nl, f);
    }
}

TEST(FaultSim, DropDetectedMatchesIndividualDetection) {
    const Netlist nl = make_s27();
    const CollapsedFaults cf = collapse(nl);
    FaultList list(cf.representatives());
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    util::Rng rng(31);
    const InputSequence seq = random_sequence(nl, 12, rng);
    const std::size_t dropped = fsim.drop_detected(seq, list);
    std::size_t expect_dropped = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
        const bool det = fsim.detects(seq, list.fault(i));
        expect_dropped += det;
        EXPECT_EQ(list.status(i) == FaultStatus::Detected, det);
    }
    EXPECT_EQ(dropped, expect_dropped);
    EXPECT_GT(dropped, 0u);  // a 12-frame random sequence detects something
}

TEST(FaultSim, DetectsObviousFault) {
    // y = AND(a, b), y observed: a s-a-0 detected by a=b=1.
    NetlistBuilder b("and2");
    b.input("a").input("bb");
    b.gate(GateType::And, "y", {"a", "bb"});
    b.output("y");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    const InputSequence seq{{Val3::One, Val3::One}};
    EXPECT_TRUE(fsim.detects(seq, Fault{nl.find("a"), kOutputPin, Val3::Zero}));
    EXPECT_FALSE(fsim.detects(seq, Fault{nl.find("a"), kOutputPin, Val3::One}));
    const InputSequence seq01{{Val3::Zero, Val3::One}};
    EXPECT_TRUE(fsim.detects(seq01, Fault{nl.find("a"), kOutputPin, Val3::One}));
}

TEST(FaultSim, SequentialFaultNeedsPropagationFrames) {
    // Pipeline: fault at the head shows at the PO only after 2 frames.
    NetlistBuilder b("pipe");
    b.input("i");
    b.dff("f1", "i");
    b.dff("f2", "f1");
    b.output("f2");
    const Netlist nl = b.build();
    const netlist::Topology topo(nl);
    FaultSimulator fsim(topo);
    const Fault f{nl.find("i"), kOutputPin, Val3::Zero};
    const InputSequence short_seq{{Val3::One}, {Val3::One}};
    EXPECT_FALSE(fsim.detects(short_seq, f));
    const InputSequence long_seq{{Val3::One}, {Val3::One}, {Val3::One}};
    EXPECT_TRUE(fsim.detects(long_seq, f));
}

TEST(FaultSim, ParallelDropDetectedMatchesSerial) {
    // More than one 63-fault pass, random sequences, serial vs pooled
    // drop_detected over per-worker clones: every status and drop count
    // must agree (detection is a union merged in fault-index order).
    const Netlist nl = testing::random_circuit(77, 8, 6, 60);
    const netlist::Topology topo(nl);
    const CollapsedFaults collapsed = collapse(nl);
    ASSERT_GT(collapsed.size(), kFaultsPerPass);  // at least two passes

    FaultSimulator serial(topo);
    exec::Pool pool(4);
    FaultSimulator parallel(topo);
    parallel.set_executor(&pool);

    FaultList serial_list(collapsed.representatives());
    FaultList parallel_list(collapsed.representatives());
    util::Rng rng(1234);
    for (int round = 0; round < 6; ++round) {
        InputSequence seq(8, InputFrame(nl.inputs().size(), Val3::X));
        for (auto& frame : seq)
            for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
        const std::size_t a = serial.drop_detected(seq, serial_list);
        const std::size_t b = parallel.drop_detected(seq, parallel_list);
        EXPECT_EQ(a, b) << "round " << round;
    }
    EXPECT_GT(serial_list.counts().detected, 0u);
    for (std::size_t i = 0; i < serial_list.size(); ++i) {
        EXPECT_EQ(serial_list.status(i), parallel_list.status(i)) << i;
    }
}

TEST(FaultSim, ParallelDropForwardsGoodTiesToClones) {
    // set_good_ties after clones exist must reconfigure every worker: tie a
    // gate and check parallel statuses still match a serial simulator with
    // the same ties.
    const Netlist nl = testing::random_circuit(31, 7, 5, 50);
    const netlist::Topology topo(nl);
    const CollapsedFaults collapsed = collapse(nl);
    if (collapsed.size() <= kFaultsPerPass) GTEST_SKIP();

    std::vector<Val3> ties(nl.size(), Val3::X);
    std::vector<std::uint32_t> cycles(nl.size(), 0);
    ties[nl.seq_elements()[0]] = Val3::Zero;

    exec::Pool pool(4);
    FaultSimulator parallel(topo);
    parallel.set_executor(&pool);
    {
        // Force clone creation with tie-free state first.
        FaultList warmup(collapsed.representatives());
        InputSequence seq(4, InputFrame(nl.inputs().size(), Val3::One));
        parallel.drop_detected(seq, warmup);
    }
    parallel.set_good_ties(&ties, &cycles);

    FaultSimulator serial(topo);
    serial.set_good_ties(&ties, &cycles);

    FaultList serial_list(collapsed.representatives());
    FaultList parallel_list(collapsed.representatives());
    util::Rng rng(77);
    for (int round = 0; round < 4; ++round) {
        InputSequence seq(8, InputFrame(nl.inputs().size(), Val3::X));
        for (auto& frame : seq)
            for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
        EXPECT_EQ(serial.drop_detected(seq, serial_list),
                  parallel.drop_detected(seq, parallel_list));
    }
    for (std::size_t i = 0; i < serial_list.size(); ++i) {
        EXPECT_EQ(serial_list.status(i), parallel_list.status(i)) << i;
    }
}

}  // namespace
}  // namespace seqlearn::fault
