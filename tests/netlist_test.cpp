// Unit tests for the netlist substrate: container invariants, builder,
// .bench I/O, levelization, structural traversals, and clock classes.

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/clock_class.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace seqlearn::netlist {
namespace {

// ISCAS-89 s27 in .bench syntax (public benchmark circuit).
constexpr const char* kS27 = R"(
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

Netlist make_s27() { return read_bench_string(kS27, "s27"); }

TEST(Netlist, AddGateArityChecks) {
    Netlist nl;
    const GateId a = nl.add_gate(GateType::Input, "a", {});
    EXPECT_THROW(nl.add_gate(GateType::Input, "a", {}), std::invalid_argument);  // dup name
    const std::vector<GateId> one{a};
    EXPECT_THROW(nl.add_gate(GateType::And, "g", one), std::invalid_argument);  // AND needs 2
    const std::vector<GateId> two{a, a};
    EXPECT_THROW(nl.add_gate(GateType::Not, "g", two), std::invalid_argument);  // NOT needs 1
    EXPECT_THROW(nl.add_gate(GateType::Input, "i", one), std::invalid_argument);
    EXPECT_NO_THROW(nl.add_gate(GateType::And, "g", two));
}

TEST(Netlist, FanoutEdgesMaintained) {
    Netlist nl;
    const GateId a = nl.add_gate(GateType::Input, "a", {});
    const GateId b = nl.add_gate(GateType::Input, "b", {});
    const std::vector<GateId> fan{a, b};
    const GateId g = nl.add_gate(GateType::And, "g", fan);
    ASSERT_EQ(nl.fanouts(a).size(), 1u);
    EXPECT_EQ(nl.fanouts(a)[0], g);
    EXPECT_EQ(nl.fanouts(b)[0], g);
    EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ReplaceFaninUpdatesBothSides) {
    Netlist nl;
    const GateId a = nl.add_gate(GateType::Input, "a", {});
    const GateId b = nl.add_gate(GateType::Input, "b", {});
    const GateId c = nl.add_gate(GateType::Input, "c", {});
    const std::vector<GateId> fan{a, b};
    const GateId g = nl.add_gate(GateType::Or, "g", fan);
    nl.replace_fanin(g, 0, c);
    EXPECT_EQ(nl.fanins(g)[0], c);
    EXPECT_TRUE(nl.fanouts(a).empty());
    EXPECT_EQ(nl.fanouts(c)[0], g);
    EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, StemsAreMultiFanoutNodes) {
    const Netlist nl = make_s27();
    const auto stems = nl.stems();
    auto is_stem = [&](const char* name) {
        const GateId id = nl.find(name);
        return std::find(stems.begin(), stems.end(), id) != stems.end();
    };
    // G8 feeds G15 and G16; G11 feeds G17, G10, and G6's D; G14 feeds G8 and G10.
    EXPECT_TRUE(is_stem("G8"));
    EXPECT_TRUE(is_stem("G11"));
    EXPECT_TRUE(is_stem("G14"));
    EXPECT_FALSE(is_stem("G17"));
    EXPECT_FALSE(is_stem("G9"));
}

TEST(Netlist, CountsMatchS27) {
    const Netlist nl = make_s27();
    const auto c = nl.counts();
    EXPECT_EQ(c.inputs, 4u);
    EXPECT_EQ(c.outputs, 1u);
    EXPECT_EQ(c.flip_flops, 3u);
    EXPECT_EQ(c.latches, 0u);
    EXPECT_EQ(c.combinational, 10u);
}

TEST(Builder, ForwardReferencesResolve) {
    NetlistBuilder b("fwd");
    b.input("i");
    b.gate(GateType::And, "g", {"i", "f"});  // f declared below
    b.dff("f", "g");
    b.output("g");
    const Netlist nl = b.build();
    EXPECT_EQ(nl.size(), 3u);
    EXPECT_EQ(nl.fanins(nl.find("f"))[0], nl.find("g"));
    EXPECT_EQ(nl.fanins(nl.find("g"))[1], nl.find("f"));
}

TEST(Builder, AutonomousCircuitWithoutInputs) {
    // A free-running toggler: F = DFF(NOT(F)).
    NetlistBuilder b("osc");
    b.dff("F", "n");
    b.gate(GateType::Not, "n", {"F"});
    b.output("F");
    const Netlist nl = b.build();
    EXPECT_EQ(nl.counts().flip_flops, 1u);
    EXPECT_EQ(nl.fanins(nl.find("F"))[0], nl.find("n"));
}

TEST(Builder, RejectsUndeclaredFanin) {
    NetlistBuilder b;
    b.input("i");
    b.gate(GateType::Not, "g", {"nope"});
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, RejectsCombinationalCycle) {
    NetlistBuilder b;
    b.input("i");
    b.gate(GateType::And, "g1", {"i", "g2"});
    b.gate(GateType::And, "g2", {"i", "g1"});
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, SequentialFeedbackIsNotACycle) {
    NetlistBuilder b;
    b.input("i");
    b.gate(GateType::And, "g", {"i", "f"});
    b.dff("f", "g");
    EXPECT_NO_THROW(b.build());
}

TEST(Builder, SharedFaninDiamondIsNotACycle) {
    NetlistBuilder b;
    b.input("i");
    b.gate(GateType::Not, "n", {"i"});
    b.gate(GateType::And, "a", {"n", "i"});
    b.gate(GateType::Or, "o", {"n", "a"});
    b.output("o");
    EXPECT_NO_THROW(b.build());
}

TEST(Builder, RejectsDuplicateNames) {
    NetlistBuilder b;
    b.input("x");
    b.input("x");
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, RejectsUnknownOutput) {
    NetlistBuilder b;
    b.input("x");
    b.output("y");
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Levelize, LevelsRespectDependencies) {
    const Netlist nl = make_s27();
    const auto lv = levelize(nl);
    EXPECT_EQ(lv.topo_order.size(), nl.size());
    // Every combinational gate sits strictly above its combinational fanins.
    for (GateId id = 0; id < nl.size(); ++id) {
        if (!is_combinational(nl.type(id))) continue;
        for (const GateId f : nl.fanins(id)) {
            const std::uint32_t fl = is_sequential(nl.type(f)) ? 0 : lv.level[f];
            EXPECT_GE(lv.level[id], fl + 1);
        }
    }
    // Topological order: fanins precede their combinational consumers.
    std::vector<std::size_t> pos(nl.size());
    for (std::size_t i = 0; i < lv.topo_order.size(); ++i) pos[lv.topo_order[i]] = i;
    for (GateId id = 0; id < nl.size(); ++id) {
        if (!is_combinational(nl.type(id))) continue;
        for (const GateId f : nl.fanins(id)) EXPECT_LT(pos[f], pos[id]);
    }
}

TEST(BenchIO, ParsesS27Shape) {
    const Netlist nl = make_s27();
    EXPECT_EQ(nl.name(), "s27");
    EXPECT_EQ(nl.size(), 17u);
    EXPECT_NE(nl.find("G9"), kNoGate);
    EXPECT_EQ(nl.find("missing"), kNoGate);
    EXPECT_EQ(nl.type(nl.find("G5")), GateType::Dff);
    EXPECT_EQ(nl.type(nl.find("G9")), GateType::Nand);
    EXPECT_EQ(nl.outputs().size(), 1u);
    EXPECT_EQ(nl.outputs()[0], nl.find("G17"));
}

TEST(BenchIO, RoundTripPreservesStructure) {
    const Netlist a = make_s27();
    const std::string text = write_bench_string(a);
    const Netlist b = read_bench_string(text, "s27");
    ASSERT_EQ(a.size(), b.size());
    for (GateId id = 0; id < a.size(); ++id) {
        const GateId bid = b.find(a.name_of(id));
        ASSERT_NE(bid, kNoGate) << a.name_of(id);
        EXPECT_EQ(a.type(id), b.type(bid));
        ASSERT_EQ(a.fanins(id).size(), b.fanins(bid).size());
        for (std::size_t i = 0; i < a.fanins(id).size(); ++i) {
            EXPECT_EQ(a.name_of(a.fanins(id)[i]), b.name_of(b.fanins(bid)[i]));
        }
    }
    EXPECT_EQ(a.outputs().size(), b.outputs().size());
}

TEST(BenchIO, SeqPragmaRoundTrip) {
    const char* text = R"(
INPUT(i)
OUTPUT(f)
f = DFF(g)
g = AND(i, f)
#@ seq f clock=3 phase=1 sr=reset unconstrained
)";
    const Netlist nl = read_bench_string(text);
    const SeqAttrs& a = nl.seq_attrs(nl.find("f"));
    EXPECT_EQ(a.clock_id, 3);
    EXPECT_EQ(a.phase, 1);
    EXPECT_EQ(a.set_reset, SetReset::ResetOnly);
    EXPECT_TRUE(a.sr_unconstrained);

    const Netlist back = read_bench_string(write_bench_string(nl));
    const SeqAttrs& b = back.seq_attrs(back.find("f"));
    EXPECT_EQ(b.clock_id, 3);
    EXPECT_EQ(b.phase, 1);
    EXPECT_EQ(b.set_reset, SetReset::ResetOnly);
    EXPECT_TRUE(b.sr_unconstrained);
}

TEST(BenchIO, MultiPortLatchFromArity) {
    const char* text = R"(
INPUT(a)
INPUT(b)
l = DLATCH(a, b)
OUTPUT(l)
)";
    const Netlist nl = read_bench_string(text);
    EXPECT_EQ(nl.type(nl.find("l")), GateType::Dlatch);
    EXPECT_EQ(nl.seq_attrs(nl.find("l")).num_ports, 2);
}

TEST(BenchIO, RejectsMalformedLines) {
    EXPECT_THROW(read_bench_string("INPUT a\n"), std::runtime_error);
    EXPECT_THROW(read_bench_string("g = FROB(a)\nINPUT(a)\n"), std::runtime_error);
    EXPECT_THROW(read_bench_string("INPUT(a)\ng = DFF(a, a)\n"), std::runtime_error);
}

TEST(Structure, FanoutConeStopsAtSequentialByDefault) {
    const Netlist nl = make_s27();
    const auto cone = fanout_cone(nl, nl.find("G14"), /*through_seq=*/false);
    auto in_cone = [&](const char* n) {
        const GateId id = nl.find(n);
        return std::find(cone.begin(), cone.end(), id) != cone.end();
    };
    EXPECT_TRUE(in_cone("G8"));
    EXPECT_TRUE(in_cone("G10"));
    EXPECT_TRUE(in_cone("G5"));  // reached as a sink, not expanded
    EXPECT_TRUE(in_cone("G9"));
    // G5 is sequential, so its fanout G11 must not be reached *through* it;
    // G11 is still in the cone via the combinational path G9 -> G11.
    EXPECT_TRUE(in_cone("G11"));
    // G2 only feeds G13 and is not downstream of G14 combinationally.
    EXPECT_FALSE(in_cone("G2"));
}

TEST(Structure, FanoutConeThroughSequential) {
    const Netlist nl = make_s27();
    // G2 -> G13 -> G7 (DFF). Blocked at G7, the cone is tiny; expanding
    // through G7 reaches G12, G15, G9, G11, ... on the next-frame path.
    const auto blocked = fanout_cone(nl, nl.find("G2"), false);
    const auto open = fanout_cone(nl, nl.find("G2"), true);
    EXPECT_EQ(blocked.size(), 2u);
    EXPECT_GT(open.size(), blocked.size());
    auto in = [&](const std::vector<GateId>& v, const char* n) {
        return std::find(v.begin(), v.end(), nl.find(n)) != v.end();
    };
    EXPECT_FALSE(in(blocked, "G12"));
    EXPECT_TRUE(in(open, "G12"));
    EXPECT_TRUE(in(open, "G9"));
}

TEST(Structure, CombSupportOfS27G9) {
    const Netlist nl = make_s27();
    const auto support = comb_support(nl, nl.find("G9"));
    auto has = [&](const char* n) {
        const GateId id = nl.find(n);
        return std::find(support.begin(), support.end(), id) != support.end();
    };
    // G9 = NAND(G16, G15); G16 = OR(G3, G8); G15 = OR(G12, G8);
    // G8 = AND(G14, G6); G14 = NOT(G0); G12 = NOR(G1, G7).
    EXPECT_TRUE(has("G3"));
    EXPECT_TRUE(has("G0"));
    EXPECT_TRUE(has("G1"));
    EXPECT_TRUE(has("G6"));
    EXPECT_TRUE(has("G7"));
    EXPECT_FALSE(has("G2"));
    EXPECT_FALSE(has("G5"));
}

TEST(Structure, SequentialDepthOfPipelineAndFsm) {
    // Pipeline of 3 DFFs -> depth 3.
    NetlistBuilder b("pipe");
    b.input("i");
    b.dff("f1", "i");
    b.dff("f2", "f1");
    b.dff("f3", "f2");
    b.output("f3");
    EXPECT_EQ(sequential_depth(b.build()), 3u);

    // A feedback FSM hits the cap.
    NetlistBuilder c("loop");
    c.input("i");
    c.gate(GateType::And, "g", {"i", "f"});
    c.dff("f", "g");
    c.output("f");
    EXPECT_EQ(sequential_depth(c.build(), 16), 16u);
}

TEST(ClockClass, PartitionByClockPhaseAndKind) {
    NetlistBuilder b("domains");
    b.input("i");
    SeqAttrs clk0{};
    SeqAttrs clk0n{};
    clk0n.phase = 1;
    SeqAttrs clk1{};
    clk1.clock_id = 1;
    b.dff("f1", "i", clk0);
    b.dff("f2", "i", clk0);
    b.dff("f3", "i", clk0n);
    b.dff("f4", "i", clk1);
    b.dlatch("l1", {"i"}, clk0);
    b.output("f1");
    const Netlist nl = b.build();
    const auto classes = clock_classes(nl);
    ASSERT_EQ(classes.size(), 4u);
    // (clock 0, phase 0, FF) holds f1 and f2; latches split off even on the
    // same clock and phase.
    std::size_t total = 0;
    bool found_pair = false;
    for (const auto& c : classes) {
        total += c.members.size();
        if (c.members.size() == 2) {
            found_pair = true;
            EXPECT_FALSE(c.is_latch);
            EXPECT_EQ(c.clock_id, 0);
            EXPECT_EQ(c.phase, 0);
        }
    }
    EXPECT_TRUE(found_pair);
    EXPECT_EQ(total, nl.seq_elements().size());
}

TEST(ClockClass, SingleDomainYieldsOneClass) {
    const Netlist nl = make_s27();
    const auto classes = clock_classes(nl);
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(classes[0].members.size(), 3u);
}

}  // namespace
}  // namespace seqlearn::netlist
