// End-to-end integration: learn -> ATPG -> fault-sim through the Session
// facade on suite circuits, checking the paper's qualitative claims hold on
// this implementation.

#include "api/session.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

namespace seqlearn {
namespace {

using atpg::AtpgConfig;
using atpg::LearnMode;
using fault::FaultStatus;
using netlist::Netlist;

struct CampaignResult {
    fault::FaultList::Counts counts;
    double cpu = 0.0;
    std::uint64_t backtracks = 0;
};

CampaignResult campaign(api::Session& session, LearnMode mode,
                        std::uint32_t backtrack_limit) {
    AtpgConfig cfg;
    cfg.mode = mode;
    cfg.backtrack_limit = backtrack_limit;
    const api::AtpgReport& report = session.atpg(cfg);
    EXPECT_EQ(report.outcome.invalid_tests, 0u);
    return {report.list.counts(), report.outcome.cpu_seconds,
            report.outcome.total_backtracks};
}

TEST(Integration, LearningHelpsOnRetimedCircuit) {
    api::Session session(workload::suite_circuit("rt510a"));
    const core::LearnResult& learned = session.learn();
    EXPECT_GT(learned.stats.ff_ff_relations, 0u);

    const CampaignResult none = campaign(session, LearnMode::None, 30);
    const CampaignResult forb = campaign(session, LearnMode::ForbiddenValue, 30);
    const CampaignResult known = campaign(session, LearnMode::KnownValue, 30);

    // The paper's core claim, weakened to "not worse" for robustness across
    // seeds: with learning, detected + proven-untestable never drops.
    EXPECT_GE(forb.counts.detected + forb.counts.untestable,
              none.counts.detected + none.counts.untestable);
    EXPECT_GE(known.counts.detected + known.counts.untestable,
              none.counts.detected + none.counts.untestable);
}

TEST(Integration, FullFlowOnFig1) {
    api::Session session(workload::suite_circuit("fig1x"));
    // The tie-derived untestable faults include the G3 stuck-at-0 class.
    AtpgConfig cfg;
    cfg.mode = LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 1000;
    const api::AtpgReport& report = session.atpg(cfg);
    EXPECT_EQ(report.outcome.invalid_tests, 0u);
    EXPECT_GT(report.outcome.untestable_by_tie, 0u);
    const auto c = report.list.counts();
    EXPECT_GT(report.list.fault_coverage(), 0.5);
    EXPECT_EQ(c.total, session.collapsed_faults().size());
    // The facade's validation step reproduces the campaign's detections.
    const api::FaultSimReport check = session.fault_sim();
    EXPECT_EQ(check.detected, c.detected);
}

TEST(Integration, ModesAgreeOnTotalAccounting) {
    api::Session session(workload::suite_circuit("fig2x"));
    for (const LearnMode mode :
         {LearnMode::None, LearnMode::KnownValue, LearnMode::ForbiddenValue}) {
        const CampaignResult r = campaign(session, mode, 1000);
        EXPECT_EQ(r.counts.total,
                  r.counts.detected + r.counts.untestable + r.counts.aborted +
                      r.counts.undetected);
    }
}

TEST(Integration, LearningIsFastOnMidSizeCircuit) {
    api::Session session(workload::suite_circuit("gen1423"));
    const core::LearnResult& learned = session.learn();
    // ~650 gates must learn in well under a second even in debug-ish builds.
    EXPECT_LT(learned.stats.cpu_seconds, 5.0);
    EXPECT_GT(learned.stats.stems_processed, 0u);
}

TEST(Integration, StatsAggregateTheWholeFlow) {
    api::Session session(workload::suite_circuit("fig1x"));
    api::SessionStats before = session.stats();
    EXPECT_FALSE(before.learned);
    EXPECT_FALSE(before.atpg_run);
    EXPECT_GT(before.gates, 0u);
    EXPECT_GT(before.collapsed_faults, 0u);

    session.learn();
    AtpgConfig cfg;
    cfg.mode = LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 200;
    session.atpg(cfg);
    const api::SessionStats after = session.stats();
    EXPECT_TRUE(after.learned);
    EXPECT_TRUE(after.atpg_run);
    EXPECT_GT(after.relations, 0u);
    EXPECT_EQ(after.faults.total, after.collapsed_faults);
    EXPECT_GT(after.tests, 0u);
}

}  // namespace
}  // namespace seqlearn
