// End-to-end integration: learn -> ATPG across modes on suite circuits,
// checking the paper's qualitative claims hold on this implementation.

#include "atpg/atpg_loop.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

namespace seqlearn {
namespace {

using atpg::AtpgConfig;
using atpg::LearnMode;
using fault::FaultStatus;
using netlist::Netlist;

struct CampaignResult {
    fault::FaultList::Counts counts;
    double cpu = 0.0;
    std::uint64_t backtracks = 0;
};

CampaignResult campaign(const Netlist& nl, LearnMode mode, const core::LearnResult* learned,
                        std::uint32_t backtrack_limit) {
    fault::FaultList list(fault::collapse(nl).representatives());
    AtpgConfig cfg;
    cfg.mode = mode;
    cfg.learned = learned;
    cfg.backtrack_limit = backtrack_limit;
    const atpg::AtpgOutcome out = run_atpg(nl, list, cfg);
    EXPECT_EQ(out.invalid_tests, 0u);
    return {list.counts(), out.cpu_seconds, out.total_backtracks};
}

TEST(Integration, LearningHelpsOnRetimedCircuit) {
    const Netlist nl = workload::suite_circuit("rt510a");
    const core::LearnResult learned = core::learn(nl);
    EXPECT_GT(learned.stats.ff_ff_relations, 0u);

    const CampaignResult none = campaign(nl, LearnMode::None, nullptr, 30);
    const CampaignResult forb = campaign(nl, LearnMode::ForbiddenValue, &learned, 30);
    const CampaignResult known = campaign(nl, LearnMode::KnownValue, &learned, 30);

    // The paper's core claim, weakened to "not worse" for robustness across
    // seeds: with learning, detected + proven-untestable never drops.
    EXPECT_GE(forb.counts.detected + forb.counts.untestable,
              none.counts.detected + none.counts.untestable);
    EXPECT_GE(known.counts.detected + known.counts.untestable,
              none.counts.detected + none.counts.untestable);
}

TEST(Integration, FullFlowOnFig1) {
    const Netlist nl = workload::suite_circuit("fig1x");
    const core::LearnResult learned = core::learn(nl);
    // The tie-derived untestable faults include the G3 stuck-at-0 class.
    fault::FaultList list(fault::collapse(nl).representatives());
    AtpgConfig cfg;
    cfg.mode = LearnMode::ForbiddenValue;
    cfg.learned = &learned;
    cfg.backtrack_limit = 1000;
    const atpg::AtpgOutcome out = run_atpg(nl, list, cfg);
    EXPECT_EQ(out.invalid_tests, 0u);
    EXPECT_GT(out.untestable_by_tie, 0u);
    const auto c = list.counts();
    EXPECT_GT(list.fault_coverage(), 0.5);
    EXPECT_EQ(c.total, fault::collapse(nl).size());
}

TEST(Integration, ModesAgreeOnTotalAccounting) {
    const Netlist nl = workload::suite_circuit("fig2x");
    const core::LearnResult learned = core::learn(nl);
    for (const LearnMode mode :
         {LearnMode::None, LearnMode::KnownValue, LearnMode::ForbiddenValue}) {
        const CampaignResult r =
            campaign(nl, mode, mode == LearnMode::None ? nullptr : &learned, 1000);
        EXPECT_EQ(r.counts.total,
                  r.counts.detected + r.counts.untestable + r.counts.aborted +
                      r.counts.undetected);
    }
}

TEST(Integration, LearningIsFastOnMidSizeCircuit) {
    const Netlist nl = workload::suite_circuit("gen1423");
    const core::LearnResult learned = core::learn(nl);
    // ~650 gates must learn in well under a second even in debug-ish builds.
    EXPECT_LT(learned.stats.cpu_seconds, 5.0);
    EXPECT_GT(learned.stats.stems_processed, 0u);
}

}  // namespace
}  // namespace seqlearn
