// Tests for the simulation substrate: the levelized reference engine, the
// scalar sequence simulator, the event-driven multi-frame simulator used by
// learning, and the 64-lane parallel simulator.

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/clock_class.hpp"
#include "netlist/topology.hpp"
#include "sim/batch_frame_sim.hpp"
#include "sim/comb_engine.hpp"
#include "sim/frame_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"
#include "workload/circuit_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace seqlearn::sim {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::kNoGate;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::SeqAttrs;
using netlist::SetReset;

constexpr const char* kS27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

// Find the implied value of `gate` at `frame`, or X if absent.
Val3 implied_at(const FrameSimResult& res, GateId gate, std::uint32_t frame) {
    for (const ImpliedValue& iv : res.implied) {
        if (iv.gate == gate && iv.frame == frame) return iv.value;
    }
    return Val3::X;
}

TEST(CombEngine, EvaluatesKnownTruthTable) {
    NetlistBuilder b("tt");
    b.input("a").input("b");
    b.gate(GateType::Nand, "n", {"a", "b"});
    b.gate(GateType::Xor, "x", {"n", "a"});
    b.output("x");
    const Netlist nl = b.build();
    const CombEngine eng(nl);
    std::vector<Val3> vals(nl.size(), Val3::X);
    vals[nl.find("a")] = Val3::One;
    vals[nl.find("b")] = Val3::Zero;
    eng.eval(vals);
    EXPECT_EQ(vals[nl.find("n")], Val3::One);   // NAND(1,0)=1
    EXPECT_EQ(vals[nl.find("x")], Val3::Zero);  // XOR(1,1)=0
}

TEST(CombEngine, XPropagatesPessimistically) {
    NetlistBuilder b("xprop");
    b.input("a");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::Or, "taut", {"a", "na"});  // tautology, but 3-valued X
    b.output("taut");
    const Netlist nl = b.build();
    const CombEngine eng(nl);
    std::vector<Val3> vals(nl.size(), Val3::X);
    eng.eval(vals);
    EXPECT_EQ(vals[nl.find("taut")], Val3::X);
    vals.assign(nl.size(), Val3::X);
    vals[nl.find("a")] = Val3::Zero;
    eng.eval(vals);
    EXPECT_EQ(vals[nl.find("taut")], Val3::One);
}

TEST(CombEngine, ConstantsAlwaysEvaluate) {
    NetlistBuilder b("consts");
    b.input("a");
    b.constant("zero", false);
    b.constant("one", true);
    b.gate(GateType::And, "g", {"a", "one"});
    b.output("g");
    const Netlist nl = b.build();
    const CombEngine eng(nl);
    std::vector<Val3> vals(nl.size(), Val3::X);
    eng.eval(vals);
    EXPECT_EQ(vals[nl.find("zero")], Val3::Zero);
    EXPECT_EQ(vals[nl.find("one")], Val3::One);
    EXPECT_EQ(vals[nl.find("g")], Val3::X);  // a is X
}

TEST(SequenceSim, ToggleFlipFlop) {
    // F toggles every cycle once initialized: F' = XOR(F, 1) via NOT.
    NetlistBuilder b("toggle");
    b.input("seed");
    b.gate(GateType::Not, "nf", {"f"});
    b.dff("f", "mux");
    // mux = (seed AND first) OR nf — emulate init by ORing seed once.
    b.gate(GateType::Or, "mux", {"seed", "nf"});
    b.output("f");
    const Netlist nl = b.build();

    // Drive seed=1 in frame 0 (forces mux=1), then 0.
    InputSequence seq{{Val3::One}, {Val3::Zero}, {Val3::Zero}, {Val3::Zero}};
    const SequenceResult r = simulate_sequence(nl, seq);
    const GateId f = nl.find("f");
    EXPECT_EQ(r.frames[0][f], Val3::X);    // uninitialized
    EXPECT_EQ(r.frames[1][f], Val3::One);  // captured the forced 1
    EXPECT_EQ(r.frames[2][f], Val3::Zero);
    EXPECT_EQ(r.frames[3][f], Val3::One);
}

TEST(SequenceSim, InitialStateArgument) {
    NetlistBuilder b("sr");
    b.input("i");
    b.dff("f", "i");
    b.output("f");
    const Netlist nl = b.build();
    std::vector<Val3> init{Val3::One};
    InputSequence seq{{Val3::Zero}, {Val3::Zero}};
    const SequenceResult r = simulate_sequence(nl, seq, &init);
    EXPECT_EQ(r.frames[0][nl.find("f")], Val3::One);
    EXPECT_EQ(r.frames[1][nl.find("f")], Val3::Zero);
}

TEST(SequenceSim, RejectsBadSizes) {
    NetlistBuilder b("bad");
    b.input("i");
    b.dff("f", "i");
    b.output("f");
    const Netlist nl = b.build();
    InputSequence wrong{{Val3::Zero, Val3::Zero}};
    EXPECT_THROW(simulate_sequence(nl, wrong), std::invalid_argument);
    std::vector<Val3> bad_init{Val3::One, Val3::One};
    InputSequence ok{{Val3::Zero}};
    EXPECT_THROW(simulate_sequence(nl, ok, &bad_init), std::invalid_argument);
}

// --- FrameSimulator -------------------------------------------------------

TEST(FrameSim, SingleInjectionPropagatesWithinFrame) {
    const Netlist nl = netlist::read_bench_string(kS27, "s27");
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("G0"), Val3::One}};
    const auto res = sim.run(inj, {});
    // G0=1 -> G14=0 -> G8=0, and G10 = NOR(G14=0, G11=X) stays X.
    EXPECT_EQ(implied_at(res, nl.find("G14"), 0), Val3::Zero);
    EXPECT_EQ(implied_at(res, nl.find("G8"), 0), Val3::Zero);
    EXPECT_EQ(implied_at(res, nl.find("G10"), 0), Val3::X);
    EXPECT_FALSE(res.conflict);
}

TEST(FrameSim, ValueCrossesFrameBoundaryThroughFF) {
    // f = DFF(i); g = AND(f, j).
    NetlistBuilder b("cross");
    b.input("i").input("j");
    b.dff("f", "i");
    b.gate(GateType::And, "g", {"f", "j"});
    b.output("g");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("i"), Val3::Zero}};
    const auto res = sim.run(inj, {});
    EXPECT_EQ(implied_at(res, nl.find("f"), 1), Val3::Zero);
    EXPECT_EQ(implied_at(res, nl.find("g"), 1), Val3::Zero);  // AND with 0
    EXPECT_EQ(implied_at(res, nl.find("f"), 0), Val3::X);
}

TEST(FrameSim, StopsOnStateRepeat) {
    // f latches 1 forever once i=1 passes through OR feedback.
    NetlistBuilder b("sticky");
    b.input("i");
    b.gate(GateType::Or, "d", {"i", "f"});
    b.dff("f", "d");
    b.output("f");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("i"), Val3::One}};
    FrameSimOptions opt;
    opt.max_frames = 50;
    const auto res = sim.run(inj, opt);
    EXPECT_TRUE(res.stopped_on_repeat);
    // Frame 0: d=1. Frame 1: f=1, d=1 -> state repeats -> stop.
    EXPECT_EQ(res.frames_run, 2u);
    EXPECT_EQ(implied_at(res, nl.find("f"), 1), Val3::One);
}

TEST(FrameSim, RespectsMaxFrames) {
    // A two-stage ring oscillator: f1 = DFF(NOT f2), f2 = DFF(f1). Kicking
    // f1 directly makes a single known value circulate forever; consecutive
    // states always differ (the known bit alternates between f1 and f2), so
    // only max_frames stops the run.
    NetlistBuilder b("osc2");
    b.gate(GateType::Not, "nf2", {"f2"});
    b.dff("f1", "nf2");
    b.dff("f2", "f1");
    b.output("f2");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("f1"), Val3::One}};
    FrameSimOptions opt;
    opt.max_frames = 7;
    const auto res = sim.run(inj, opt);
    EXPECT_EQ(res.frames_run, 7u);
    EXPECT_FALSE(res.stopped_on_repeat);
}

TEST(FrameSim, ContradictoryInjectionsConflict) {
    NetlistBuilder b("c");
    b.input("i");
    b.gate(GateType::Not, "n", {"i"});
    b.output("n");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("i"), Val3::One},
                                     {0, nl.find("n"), Val3::One}};
    const auto res = sim.run(inj, {});
    EXPECT_TRUE(res.conflict);
    EXPECT_EQ(res.conflict_frame, 0u);
}

TEST(FrameSim, PropagationContradictingInjectionConflicts) {
    // Inject g=1 while its inputs force 0.
    NetlistBuilder b("c2");
    b.input("a").input("b");
    b.gate(GateType::And, "g", {"a", "b"});
    b.output("g");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{0, nl.find("g"), Val3::One},
                                     {0, nl.find("a"), Val3::Zero}};
    const auto res = sim.run(inj, {});
    EXPECT_TRUE(res.conflict);
}

TEST(FrameSim, LaterFrameInjectionsApply) {
    NetlistBuilder b("late");
    b.input("i");
    b.dff("f", "i");
    b.output("f");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const std::vector<Injection> inj{{2, nl.find("i"), Val3::One}};
    const auto res = sim.run(inj, {});
    EXPECT_EQ(implied_at(res, nl.find("i"), 2), Val3::One);
    EXPECT_EQ(implied_at(res, nl.find("f"), 3), Val3::One);
    EXPECT_EQ(implied_at(res, nl.find("f"), 1), Val3::X);
}

TEST(FrameSim, EquivalenceForcingDefeatsXPessimism) {
    // g2 = XOR(h, XOR(h, a)) is functionally a, but 3-valued simulation
    // cannot see it when h is X. An equivalence link a <-> g2 recovers it.
    NetlistBuilder b("equiv");
    b.input("a").input("h");
    b.gate(GateType::Xor, "x1", {"h", "a"});
    b.gate(GateType::Xor, "g2", {"h", "x1"});
    b.gate(GateType::And, "down", {"g2", "a"});
    b.output("down");
    const Netlist nl = b.build();

    const std::vector<Injection> inj{{0, nl.find("a"), Val3::One}};
    {
        FrameSimulator plain(nl, SeqGating::all_open(nl));
        const auto res = plain.run(inj, {});
        EXPECT_EQ(implied_at(res, nl.find("g2"), 0), Val3::X);
        EXPECT_EQ(implied_at(res, nl.find("down"), 0), Val3::X);
    }
    EquivMap eq(nl.size());
    eq[nl.find("a")].push_back({nl.find("g2"), false});
    eq[nl.find("g2")].push_back({nl.find("a"), false});
    {
        FrameSimulator forced(nl, SeqGating::all_open(nl));
        forced.set_equivalences(&eq);
        const auto res = forced.run(inj, {});
        EXPECT_EQ(implied_at(res, nl.find("g2"), 0), Val3::One);
        EXPECT_EQ(implied_at(res, nl.find("down"), 0), Val3::One);
        EXPECT_FALSE(res.conflict);
    }
}

TEST(FrameSim, InverseEquivalenceLink) {
    NetlistBuilder b("inveq");
    b.input("a").input("h");
    b.gate(GateType::Xor, "x1", {"h", "a"});
    b.gate(GateType::Xnor, "g2", {"h", "x1"});  // functionally NOT a
    b.output("g2");
    const Netlist nl = b.build();
    EquivMap eq(nl.size());
    eq[nl.find("a")].push_back({nl.find("g2"), true});
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    sim.set_equivalences(&eq);
    const std::vector<Injection> inj{{0, nl.find("a"), Val3::One}};
    const auto res = sim.run(inj, {});
    EXPECT_EQ(implied_at(res, nl.find("g2"), 0), Val3::Zero);
}

TEST(FrameSim, TiesSeedEveryFrameAndDetectConflicts) {
    NetlistBuilder b("ties");
    b.input("i");
    b.gate(GateType::Or, "g", {"t", "i"});
    b.gate(GateType::And, "t", {"i", "i"});  // pretend-tied gate
    b.dff("f", "g");
    b.output("f");
    const Netlist nl = b.build();
    std::vector<Val3> ties(nl.size(), Val3::X);
    ties[nl.find("t")] = Val3::One;
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    sim.set_ties(&ties);
    // No injections at all: the tie alone drives g=1 and f=1 from frame 1 on.
    const auto res = sim.run({}, {});
    EXPECT_EQ(implied_at(res, nl.find("g"), 0), Val3::One);
    EXPECT_EQ(implied_at(res, nl.find("f"), 1), Val3::One);

    // An injection contradicting the tie conflicts immediately.
    const std::vector<Injection> bad{{0, nl.find("t"), Val3::Zero}};
    const auto res2 = sim.run(bad, {});
    EXPECT_TRUE(res2.conflict);
}

TEST(FrameSim, ReusableAfterConflictAbort) {
    // A conflict aborts mid-propagation, stranding scheduled events. The
    // next run on the same simulator must see fully reset scratch: no
    // stale bucket entries (event-counter underflow / infinite sweep) and
    // no stuck queued_ flags (silently missing implications).
    NetlistBuilder b("abort");
    b.input("a");
    b.gate(GateType::Not, "g1", {"a"});
    b.gate(GateType::Buf, "g2", {"a"});
    b.output("g1");
    b.output("g2");
    const Netlist nl = b.build();
    std::vector<Val3> ties(nl.size(), Val3::X);
    ties[nl.find("g1")] = Val3::One;  // forces a conflict when a=1
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    sim.set_ties(&ties);
    FrameSimResult res;

    // Run 1: a=1 implies g1=0, contradicting the tie; g2 may still be
    // enqueued when the conflict aborts the sweep.
    const Injection hot{0, nl.find("a"), Val3::One};
    sim.run_into({&hot, 1}, {}, res);
    ASSERT_TRUE(res.conflict);

    // Run 2 (same simulator): a=0 must terminate and imply g2=0.
    const Injection cold{0, nl.find("a"), Val3::Zero};
    sim.run_into({&cold, 1}, {}, res);
    EXPECT_FALSE(res.conflict);
    EXPECT_EQ(implied_at(res, nl.find("g2"), 0), Val3::Zero);

    // And a repeat of the conflicting run still conflicts cleanly.
    sim.run_into({&hot, 1}, {}, res);
    EXPECT_TRUE(res.conflict);
}

TEST(FrameSim, ConstantGatesAreSeeded) {
    NetlistBuilder b("konst");
    b.constant("one", true);
    b.input("i");
    b.gate(GateType::And, "g", {"one", "i"});
    b.dff("f", "one");
    b.output("g");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    const auto res = sim.run({}, {});
    EXPECT_EQ(implied_at(res, nl.find("one"), 0), Val3::One);
    EXPECT_EQ(implied_at(res, nl.find("f"), 1), Val3::One);
}

// --- Section 3.3 gating rules ---------------------------------------------

Netlist gating_circuit(SetReset sr, bool unconstrained) {
    NetlistBuilder b("gating");
    b.input("i");
    SeqAttrs attrs{};
    attrs.set_reset = sr;
    attrs.sr_unconstrained = unconstrained;
    b.dff("f", "i", attrs);
    b.gate(GateType::Buf, "o", {"f"});
    b.output("o");
    return b.build();
}

Val3 propagated(const Netlist& nl, Val3 injected) {
    const auto classes = netlist::clock_classes(nl);
    FrameSimulator sim(nl, SeqGating::for_class(nl, classes[0].members));
    const std::vector<Injection> inj{{0, nl.find("i"), injected}};
    const auto res = sim.run(inj, {});
    for (const ImpliedValue& iv : res.implied) {
        if (iv.gate == nl.find("f") && iv.frame == 1) return iv.value;
    }
    return Val3::X;
}

TEST(FrameSimGating, UnconstrainedSetPassesOnlyOne) {
    const Netlist nl = gating_circuit(SetReset::SetOnly, true);
    EXPECT_EQ(propagated(nl, Val3::One), Val3::One);
    EXPECT_EQ(propagated(nl, Val3::Zero), Val3::X);
}

TEST(FrameSimGating, UnconstrainedResetPassesOnlyZero) {
    const Netlist nl = gating_circuit(SetReset::ResetOnly, true);
    EXPECT_EQ(propagated(nl, Val3::Zero), Val3::Zero);
    EXPECT_EQ(propagated(nl, Val3::One), Val3::X);
}

TEST(FrameSimGating, UnconstrainedBothBlocks) {
    const Netlist nl = gating_circuit(SetReset::Both, true);
    EXPECT_EQ(propagated(nl, Val3::Zero), Val3::X);
    EXPECT_EQ(propagated(nl, Val3::One), Val3::X);
}

TEST(FrameSimGating, ConstrainedSetResetPassesBoth) {
    const Netlist nl = gating_circuit(SetReset::Both, false);
    EXPECT_EQ(propagated(nl, Val3::Zero), Val3::Zero);
    EXPECT_EQ(propagated(nl, Val3::One), Val3::One);
}

TEST(FrameSimGating, MultiPortLatchBlocks) {
    NetlistBuilder b("mp");
    b.input("a").input("b");
    b.dlatch("l", {"a", "b"});
    b.gate(GateType::Buf, "o", {"l"});
    b.output("o");
    const Netlist nl = b.build();
    const auto classes = netlist::clock_classes(nl);
    FrameSimulator sim(nl, SeqGating::for_class(nl, classes[0].members));
    const std::vector<Injection> inj{{0, nl.find("a"), Val3::One},
                                     {0, nl.find("b"), Val3::One}};
    const auto res = sim.run(inj, {});
    for (const ImpliedValue& iv : res.implied) EXPECT_NE(iv.gate, nl.find("l"));
}

TEST(FrameSimGating, ForeignClockClassBlocks) {
    NetlistBuilder b("2dom");
    b.input("i");
    SeqAttrs dom1{};
    dom1.clock_id = 1;
    b.dff("f0", "i");          // domain 0
    b.dff("f1", "i", dom1);    // domain 1
    b.gate(GateType::And, "g", {"f0", "f1"});
    b.output("g");
    const Netlist nl = b.build();
    // Learning pass for domain 0 must not propagate through f1.
    const auto classes = netlist::clock_classes(nl);
    const auto& dom0_members =
        classes[0].clock_id == 0 ? classes[0].members : classes[1].members;
    FrameSimulator sim(nl, SeqGating::for_class(nl, dom0_members));
    const std::vector<Injection> inj{{0, nl.find("i"), Val3::Zero}};
    const auto res = sim.run(inj, {});
    EXPECT_EQ(implied_at(res, nl.find("f0"), 1), Val3::Zero);
    EXPECT_EQ(implied_at(res, nl.find("f1"), 1), Val3::X);
}

// --- Cross-check: event-driven == full levelized simulation ---------------

TEST(FrameSim, AgreesWithReferenceSequenceSimulation) {
    const Netlist nl = netlist::read_bench_string(kS27, "s27");
    const auto inputs = nl.inputs();

    // Try all 16 binary assignments of s27's four inputs at frame 0.
    for (unsigned bits = 0; bits < 16; ++bits) {
        std::vector<Injection> inj;
        InputFrame frame(inputs.size(), Val3::X);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const Val3 v = (bits >> i) & 1 ? Val3::One : Val3::Zero;
            inj.push_back({0, inputs[i], v});
            frame[i] = v;
        }
        FrameSimOptions opt;
        opt.max_frames = 5;
        opt.stop_on_state_repeat = false;
        FrameSimulator sim(nl, SeqGating::all_open(nl));
        const auto res = sim.run(inj, opt);

        InputSequence seq(res.frames_run, InputFrame(inputs.size(), Val3::X));
        seq[0] = frame;
        const SequenceResult ref = simulate_sequence(nl, seq);

        // Every implied value must match the reference; every binary
        // reference value within the simulated frames must be implied.
        std::map<std::pair<std::uint32_t, GateId>, Val3> implied;
        for (const ImpliedValue& iv : res.implied) implied[{iv.frame, iv.gate}] = iv.value;
        for (std::uint32_t f = 0; f < res.frames_run; ++f) {
            for (GateId g = 0; g < nl.size(); ++g) {
                const Val3 ref_v = ref.frames[f][g];
                const auto it = implied.find({f, g});
                const Val3 got = it == implied.end() ? Val3::X : it->second;
                EXPECT_EQ(got, ref_v) << "gate " << nl.name_of(g) << " frame " << f;
            }
        }
    }
}

// --- ParallelSim -----------------------------------------------------------

TEST(ParallelSim, MatchesScalarEngineLanewise) {
    const Netlist nl = netlist::read_bench_string(kS27, "s27");
    ParallelSim psim(nl);
    const CombEngine eng(nl);
    util::Rng rng(99);
    std::vector<logic::Pattern> pats(nl.size());
    psim.eval_random(pats, rng);
    for (int lane = 0; lane < 64; lane += 17) {
        std::vector<Val3> vals(nl.size(), Val3::X);
        for (const GateId id : nl.inputs()) vals[id] = logic::pat_get(pats[id], lane);
        for (const GateId id : nl.seq_elements()) vals[id] = logic::pat_get(pats[id], lane);
        eng.eval(vals);
        for (GateId g = 0; g < nl.size(); ++g) {
            EXPECT_EQ(logic::pat_get(pats[g], lane), vals[g]) << nl.name_of(g);
        }
    }
}

TEST(ParallelSim, SignaturesDeterministicAndEquivalenceRevealing) {
    // Two structurally different but equivalent gates share signatures.
    NetlistBuilder b("sig");
    b.input("a").input("b");
    b.gate(GateType::And, "g1", {"a", "b"});
    b.gate(GateType::Nor, "g2", {"na", "nb"});  // AND via De Morgan
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::Not, "nb", {"b"});
    b.gate(GateType::Nand, "g3", {"a", "b"});  // complement of g1
    b.output("g1");
    const Netlist nl = b.build();
    const auto s1 = collect_signatures(nl, 4, 7);
    const auto s2 = collect_signatures(nl, 4, 7);
    EXPECT_EQ(s1.words, s2.words);
    const auto g1 = s1.of(nl.find("g1"));
    const auto g2 = s1.of(nl.find("g2"));
    EXPECT_TRUE(std::equal(g1.begin(), g1.end(), g2.begin(), g2.end()));
    // g3 is the complement in every lane.
    for (std::size_t r = 0; r < s1.rounds; ++r) {
        EXPECT_EQ(s1.of(nl.find("g1"))[r], ~s1.of(nl.find("g3"))[r]);
    }
}

// ---------------------------------------------------------------------------
// Injection-schedule regressions: equal (frame, gate) keys are "sorted" (the
// paired stem=0/stem=1 probes and tie-seeded multi-injection schedules stay
// on the no-copy fast path), and the out-of-order slow path must keep
// equal-frame injections in their given order (stable sort) so conflict
// outcomes don't depend on std::sort internals.

TEST(FrameSim, EqualFrameInjectionsKeepGivenOrder) {
    NetlistBuilder b("stab");
    b.input("a").input("b").input("c");
    b.gate(GateType::Buf, "g1", {"a"});
    b.gate(GateType::Buf, "g2", {"b"});
    b.output("g1");
    const Netlist nl = b.build();
    FrameSimulator sim(nl, SeqGating::all_open(nl));
    FrameSimOptions opt;
    opt.max_frames = 4;

    // Out-of-order schedule (frame 1 first) forces the sorting slow path;
    // within frame 0 the injections contradict on both g1 and g2, and the
    // first pair in the *given* order must produce the conflict.
    const std::vector<Injection> unsorted{
        {1, nl.find("c"), Val3::One},      {0, nl.find("g1"), Val3::Zero},
        {0, nl.find("g1"), Val3::One},     {0, nl.find("g2"), Val3::Zero},
        {0, nl.find("g2"), Val3::One},
    };
    const FrameSimResult res = sim.run(unsorted, opt);
    EXPECT_TRUE(res.conflict);
    EXPECT_EQ(res.conflict_gate, nl.find("g1"));
    EXPECT_EQ(res.conflict_frame, 0u);

    // A frame-sorted schedule with duplicate frames is already "sorted": the
    // result must match the slow path's exactly.
    const std::vector<Injection> sorted{
        {0, nl.find("g1"), Val3::Zero}, {0, nl.find("g2"), Val3::One},
        {1, nl.find("c"), Val3::One},
    };
    const std::vector<Injection> shuffled{
        {1, nl.find("c"), Val3::One},  {0, nl.find("g1"), Val3::Zero},
        {0, nl.find("g2"), Val3::One},
    };
    const FrameSimResult fast = sim.run(sorted, opt);
    const FrameSimResult slow = sim.run(shuffled, opt);
    EXPECT_EQ(fast.implied, slow.implied);
    EXPECT_EQ(fast.conflict, slow.conflict);
    EXPECT_EQ(fast.frames_run, slow.frames_run);
}

// ---------------------------------------------------------------------------
// Lane parity: every BatchFrameSimulator lane must be bit-identical (after
// canonicalize) to a scalar FrameSimulator run of the same scenario —
// including lanes that conflict (scalar fallback), lanes with multi-frame
// injection schedules, per-lane frame limits, tie seeding, equivalence
// forcing, and clock-class gating.

// Compare one lane against its scalar run. `limit` = the lane's effective
// max_frames.
void expect_lane_matches_scalar(FrameSimulator& scalar, const FrameSimResult& got,
                                std::span<const Injection> injections, std::uint32_t limit,
                                bool stop_on_repeat, int lane) {
    FrameSimOptions opt;
    opt.max_frames = limit;
    opt.stop_on_state_repeat = stop_on_repeat;
    FrameSimResult want = scalar.run(injections, opt);
    canonicalize(want);
    EXPECT_EQ(got.conflict, want.conflict) << "lane " << lane;
    if (!want.conflict) {
        EXPECT_EQ(got.frames_run, want.frames_run) << "lane " << lane;
        EXPECT_EQ(got.stopped_on_repeat, want.stopped_on_repeat) << "lane " << lane;
    }
    ASSERT_EQ(got.implied.size(), want.implied.size()) << "lane " << lane;
    for (std::size_t i = 0; i < want.implied.size(); ++i) {
        EXPECT_EQ(got.implied[i].frame, want.implied[i].frame) << "lane " << lane;
        EXPECT_EQ(got.implied[i].gate, want.implied[i].gate) << "lane " << lane;
        EXPECT_EQ(got.implied[i].value, want.implied[i].value) << "lane " << lane;
    }
}

// Random scenarios over generator circuits; a slice of lanes is forced to
// conflict by contradictory same-frame injections.
TEST(BatchFrameSim, LaneParityOnRandomCircuits) {
    for (const std::uint64_t seed : {3u, 17u, 58u}) {
        workload::GenParams p;
        p.name = "bp";
        p.seed = seed;
        p.n_inputs = 6;
        p.n_ffs = 12;
        p.n_gates = 140;
        p.shadow_ff_fraction = 0.3;
        const Netlist nl = workload::generate(p);
        const netlist::Topology topo(nl);
        const SeqGating gating = SeqGating::all_open(nl);
        BatchFrameSimulator bsim(topo, gating);
        FrameSimulator scalar(topo, gating);

        util::Rng rng(seed * 1013 + 7);
        std::vector<std::vector<Injection>> schedules(64);
        std::vector<BatchLane> lanes(64);
        for (int l = 0; l < 64; ++l) {
            const std::size_t n_inj = 1 + rng.below(3);
            for (std::size_t i = 0; i < n_inj; ++i) {
                schedules[l].push_back({static_cast<std::uint32_t>(rng.below(4)),
                                        static_cast<GateId>(rng.below(nl.size())),
                                        rng.chance(0.5) ? Val3::One : Val3::Zero});
            }
            if (l % 8 == 5) {
                // Guaranteed conflict: both values on one gate in one frame.
                const GateId g = static_cast<GateId>(rng.below(nl.size()));
                schedules[l].push_back({0, g, Val3::Zero});
                schedules[l].push_back({0, g, Val3::One});
            }
            lanes[l].injections = schedules[l];
            lanes[l].max_frames = (l % 5 == 0) ? 3 + static_cast<std::uint32_t>(rng.below(5))
                                               : 0;
        }

        FrameSimOptions opt;
        opt.max_frames = 16;
        std::vector<FrameSimResult> outs(64);
        bsim.run_lanes(lanes, opt, outs);

        bool saw_conflict = false;
        for (int l = 0; l < 64; ++l) {
            const std::uint32_t limit =
                lanes[l].max_frames == 0 ? opt.max_frames
                                         : std::min(lanes[l].max_frames, opt.max_frames);
            expect_lane_matches_scalar(scalar, outs[l], schedules[l], limit,
                                       opt.stop_on_state_repeat, l);
            saw_conflict |= outs[l].conflict;
        }
        EXPECT_TRUE(saw_conflict) << "seed " << seed;
    }
}

// The low-level API: conflict lanes must be flagged in `fallback` and clean
// lanes extracted via extract_lane must match the scalar runs.
TEST(BatchFrameSim, RawBatchFlagsConflictLanes) {
    const Netlist nl = workload::generate(workload::iscas_like("bpraw", 8, 80, 5));
    const netlist::Topology topo(nl);
    const SeqGating gating = SeqGating::all_open(nl);
    BatchFrameSimulator bsim(topo, gating);
    FrameSimulator scalar(topo, gating);

    const GateId g0 = topo.schedule().back();
    std::vector<Injection> clean{{0, g0, Val3::One}};
    std::vector<Injection> conflicting{{0, g0, Val3::One}, {0, g0, Val3::Zero}};
    const BatchLane lanes[2] = {{clean, 0}, {conflicting, 0}};

    FrameSimOptions opt;
    opt.max_frames = 10;
    BatchFrameResult res;
    bsim.run_batch(lanes, opt, res);
    EXPECT_EQ(res.used, 0b11u);
    EXPECT_EQ(res.fallback, 0b10u);

    FrameSimResult got;
    res.extract_lane(0, got);
    canonicalize(got);
    expect_lane_matches_scalar(scalar, got, clean, opt.max_frames,
                               opt.stop_on_state_repeat, 0);
    // A second batch on the same simulator must be unaffected by the
    // aborted lane (scratch fully reset).
    bsim.run_batch({lanes, 1}, opt, res);
    EXPECT_EQ(res.fallback, 0u);
    res.extract_lane(0, got);
    canonicalize(got);
    expect_lane_matches_scalar(scalar, got, clean, opt.max_frames,
                               opt.stop_on_state_repeat, 0);
}

// Parity under tie seeding (with proof cycles), equivalence forcing, and
// clock-class gating — the exact configuration the learning passes use.
TEST(BatchFrameSim, LaneParityWithTiesEquivalencesAndGating) {
    workload::GenParams p;
    p.name = "bpcfg";
    p.seed = 11;
    p.n_inputs = 5;
    p.n_ffs = 10;
    p.n_gates = 90;
    p.clock_domains = 2;
    p.sr_fraction = 0.3;
    const Netlist nl = workload::generate(p);
    const netlist::Topology topo(nl);
    const auto classes = netlist::clock_classes(nl);
    ASSERT_FALSE(classes.empty());
    const SeqGating gating = SeqGating::for_class(nl, classes[0].members);

    // A synthetic tie set (some with nonzero proof cycles) and a hand-made
    // inverse-equivalence link; parity must hold whether or not the links
    // reflect real circuit equivalences, since both engines force them.
    std::vector<Val3> ties(nl.size(), Val3::X);
    std::vector<std::uint32_t> cycles(nl.size(), 0);
    util::Rng rng(99);
    for (int i = 0; i < 6; ++i) {
        const GateId g = static_cast<GateId>(rng.below(nl.size()));
        ties[g] = rng.chance(0.5) ? Val3::One : Val3::Zero;
        cycles[g] = static_cast<std::uint32_t>(rng.below(3));
    }
    EquivMap equiv(nl.size());
    const GateId e1 = 1, e2 = 2;
    equiv[e1].push_back({e2, true});
    equiv[e2].push_back({e1, true});

    BatchFrameSimulator bsim(topo, gating);
    FrameSimulator scalar(topo, gating);
    bsim.set_ties(&ties, &cycles);
    scalar.set_ties(&ties, &cycles);
    bsim.set_equivalences(&equiv);
    scalar.set_equivalences(&equiv);

    std::vector<std::vector<Injection>> schedules(40);
    std::vector<BatchLane> lanes(40);
    for (int l = 0; l < 40; ++l) {
        const std::size_t n_inj = 1 + rng.below(2);
        for (std::size_t i = 0; i < n_inj; ++i) {
            schedules[l].push_back({static_cast<std::uint32_t>(rng.below(3)),
                                    static_cast<GateId>(rng.below(nl.size())),
                                    rng.chance(0.5) ? Val3::One : Val3::Zero});
        }
        lanes[l].injections = schedules[l];
    }
    FrameSimOptions opt;
    opt.max_frames = 12;
    std::vector<FrameSimResult> outs(40);
    bsim.run_lanes(lanes, opt, outs);
    for (int l = 0; l < 40; ++l) {
        expect_lane_matches_scalar(scalar, outs[l], schedules[l], opt.max_frames,
                                   opt.stop_on_state_repeat, l);
    }
}

}  // namespace
}  // namespace seqlearn::sim
