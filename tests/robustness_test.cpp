// Run-governance robustness: fault injection, cancelled-session reuse,
// deterministic item limits, and checkpoint/resume.
//
// The contract under test (ISSUE 6's graceful-degradation layer): a run
// that stops early — cooperative cancel, exhausted budget, or an exception
// thrown from inside a parallel work item or speculation commit — must (a)
// surface as a structured RunOutcome instead of an escaped exception or a
// deadlock, (b) leave the shared learned state (db / ties) a sound, intact
// prefix, and (c) never poison later runs: a clean re-run on the same
// engine state reproduces the untouched goldens bit for bit. Checkpointed
// resumes must converge to the exact one-shot result at any thread count
// and batch width. This suite runs under the ASan and TSan CI jobs.

#include "api/session.hpp"
#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "exec/budget.hpp"
#include "exec/failpoint.hpp"
#include "netlist/topology.hpp"
#include "test_helpers.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

namespace seqlearn::core {
namespace {

using exec::FailKind;
using exec::FailSite;
using exec::FailurePoint;
using exec::RunStatus;

// relation_hash comes from the library (core/impl_db.hpp) so these
// robustness/governance digests stay pinned to the serving protocol's.

LearnConfig exec_cfg(unsigned threads, std::size_t lanes) {
    LearnConfig cfg;
    cfg.threads = threads;
    cfg.batch_lanes = lanes;
    return cfg;
}

void expect_same_result(const LearnResult& got, const LearnResult& want,
                        const std::string& ctx) {
    EXPECT_EQ(relation_hash(got.db), relation_hash(want.db)) << ctx;
    EXPECT_EQ(got.db.size(), want.db.size()) << ctx;
    EXPECT_EQ(got.ties.dense(), want.ties.dense()) << ctx;
    EXPECT_EQ(got.ties.dense_cycles(), want.ties.dense_cycles()) << ctx;
    EXPECT_EQ(got.stats.multi_relations, want.stats.multi_relations) << ctx;
    EXPECT_EQ(got.stats.multi_ties, want.stats.multi_ties) << ctx;
    EXPECT_EQ(got.stats.stems_processed, want.stats.stems_processed) << ctx;
}

// ---------------------------------------------------------------------------
// FailurePoint semantics.

TEST(FailurePoint, FiresAtExactlyTheArmedArrival) {
    FailurePoint fp;
    // Disarmed: free.
    fp.poll(FailSite::WorkItem);
    fp.arm(FailSite::WorkItem, 3);
    fp.poll(FailSite::WorkItem);
    fp.poll(FailSite::SpecCommit);  // other sites count separately
    fp.poll(FailSite::WorkItem);
    EXPECT_THROW(fp.poll(FailSite::WorkItem), exec::InjectedFault);
    // The armed arrival is consumed; later arrivals pass.
    fp.poll(FailSite::WorkItem);
    EXPECT_GE(fp.hits(FailSite::WorkItem), 3u);

    fp.arm(FailSite::SpecCommit, 1, FailKind::BadAlloc);
    EXPECT_THROW(fp.poll(FailSite::SpecCommit), std::bad_alloc);
}

TEST(FailurePoint, InjectedFaultNamesItsSite) {
    FailurePoint fp;
    fp.arm(FailSite::BatchRecompute, 1);
    try {
        fp.poll(FailSite::BatchRecompute);
        FAIL() << "expected InjectedFault";
    } catch (const exec::InjectedFault& e) {
        EXPECT_EQ(e.site, FailSite::BatchRecompute);
        EXPECT_NE(std::string(e.what()).find("batch_recompute"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Fault injection into learning: every site, serial and parallel, must
// surface as a Failed outcome with the shared state intact.

TEST(FaultInjection, WorkItemFailureYieldsFailedOutcomeAndCleanRerun) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult golden = testing::learn(nl, exec_cfg(1, 0));
    ASSERT_TRUE(golden.outcome.ok());

    // In scalar mode the work-item site is polled per stem (arm the 3rd); in
    // batched mode it is polled per batch, and this circuit's whole pass fits
    // one batch, so the 1st arrival is the one that exists there.
    for (const auto& [threads, lanes, nth] :
         {std::tuple<unsigned, std::size_t, std::size_t>{1, 0, 3}, {4, 0, 3}, {4, 64, 1}}) {
        FailurePoint fp;
        fp.arm(FailSite::WorkItem, nth);
        LearnConfig cfg = exec_cfg(threads, lanes);
        cfg.failpoint = &fp;
        const LearnResult r = testing::learn(nl, cfg);
        const std::string ctx =
            "threads=" + std::to_string(threads) + " lanes=" + std::to_string(lanes);
        EXPECT_EQ(r.outcome.status, RunStatus::Failed) << ctx;
        EXPECT_FALSE(r.outcome.diagnostic.empty()) << ctx;
        EXPECT_FALSE(r.cursor.valid) << ctx;  // unwound: stop point unknown
        EXPECT_TRUE(r.stats.cancelled) << ctx;
        // The committed prefix is sound: every relation it holds appears in
        // the complete run's database.
        const auto all = golden.db.relations();
        for (const Relation& rel : r.db.relations()) {
            EXPECT_NE(std::find(all.begin(), all.end(), rel), all.end())
                << ctx << ": injected-failure prefix learned a bogus relation";
        }
        // A clean re-run reproduces the untouched golden exactly.
        const LearnResult clean = testing::learn(nl, exec_cfg(threads, lanes));
        expect_same_result(clean, golden, ctx + " (clean rerun)");
    }
}

TEST(FaultInjection, SpecCommitFailureYieldsFailedOutcome) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult golden = testing::learn(nl, exec_cfg(1, 0));

    for (const std::size_t lanes : {std::size_t{0}, std::size_t{64}}) {
        FailurePoint fp;
        fp.arm(FailSite::SpecCommit, 2);
        LearnConfig cfg = exec_cfg(4, lanes);
        cfg.failpoint = &fp;
        const LearnResult r = testing::learn(nl, cfg);
        const std::string ctx = "lanes=" + std::to_string(lanes);
        EXPECT_EQ(r.outcome.status, RunStatus::Failed) << ctx;
        EXPECT_GE(fp.hits(FailSite::SpecCommit), 2u) << ctx;
        const LearnResult clean = testing::learn(nl, exec_cfg(4, lanes));
        expect_same_result(clean, golden, ctx + " (clean rerun)");
    }
}

TEST(FaultInjection, BatchRecomputeFailureYieldsFailedOutcome) {
    // The recompute site is only reached when a speculative batch goes stale
    // (a tie committed mid-window), so sweep tie-rich seeds and both worker
    // counts; each firing must surface as Failed, and at least one cell of
    // the sweep must actually fire (the site is not dead).
    bool any_fired = false;
    for (const std::uint64_t seed : {21ULL, 33ULL, 55ULL, 77ULL}) {
        const netlist::Netlist nl = testing::random_circuit(seed, 6, 5, 30);
        const LearnResult golden = testing::learn(nl, exec_cfg(1, 0));
        for (const unsigned threads : {2u, 4u}) {
            FailurePoint fp;
            fp.arm(FailSite::BatchRecompute, 1);
            LearnConfig cfg = exec_cfg(threads, 64);
            cfg.failpoint = &fp;
            const LearnResult r = testing::learn(nl, cfg);
            const std::string ctx =
                "seed=" + std::to_string(seed) + " threads=" + std::to_string(threads);
            if (fp.hits(FailSite::BatchRecompute) > 0) {
                any_fired = true;
                EXPECT_EQ(r.outcome.status, RunStatus::Failed) << ctx;
                const LearnResult clean = testing::learn(nl, exec_cfg(threads, 64));
                expect_same_result(clean, golden, ctx + " (clean rerun)");
            } else {
                EXPECT_TRUE(r.outcome.ok()) << ctx;
                expect_same_result(r, golden, ctx);
            }
        }
    }
    EXPECT_TRUE(any_fired) << "no config ever reached the batch-recompute site";
}

TEST(FaultInjection, SimulatedAllocationFailureIsCaptured) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    FailurePoint fp;
    fp.arm(FailSite::WorkItem, 1, FailKind::BadAlloc);
    LearnConfig cfg = exec_cfg(4, 64);
    cfg.failpoint = &fp;
    const LearnResult r = testing::learn(nl, cfg);
    EXPECT_EQ(r.outcome.status, RunStatus::Failed);
    EXPECT_NE(r.outcome.diagnostic.find("bad_alloc"), std::string::npos)
        << r.outcome.diagnostic;
}

TEST(FaultInjection, AtpgCampaignFailureIsCapturedWithStateIntact) {
    const netlist::Netlist nl = workload::suite_circuit("s27");
    for (const unsigned threads : {1u, 4u}) {
        FailurePoint fp;
        api::SessionConfig scfg;
        scfg.threads = threads;
        scfg.failpoint = &fp;
        api::Session session(netlist::Netlist(nl), std::move(scfg));
        atpg::AtpgConfig acfg;
        acfg.mode = atpg::LearnMode::None;
        fp.arm(FailSite::WorkItem, 2);
        const api::AtpgReport& broken = session.atpg(acfg);
        EXPECT_EQ(broken.outcome.run.status, RunStatus::Failed) << "threads=" << threads;
        EXPECT_TRUE(broken.outcome.cancelled) << "threads=" << threads;

        // The session survives: the no-arg call re-runs (stale early-ended
        // campaign) with the point disarmed and completes cleanly.
        const api::AtpgReport& clean = session.atpg();
        EXPECT_TRUE(clean.outcome.run.ok()) << "threads=" << threads;
        EXPECT_GT(clean.list.counts().detected, 0u) << "threads=" << threads;
    }
}

TEST(FaultInjection, FaultSimValidationFailureIsCaptured) {
    FailurePoint fp;
    api::SessionConfig scfg;
    scfg.threads = 1;
    scfg.failpoint = &fp;
    api::Session session(workload::suite_circuit("s27"), std::move(scfg));
    atpg::AtpgConfig acfg;
    acfg.mode = atpg::LearnMode::None;
    session.atpg(acfg);

    fp.arm(FailSite::WorkItem, 1);
    const api::FaultSimReport broken = session.fault_sim();
    EXPECT_EQ(broken.outcome.status, RunStatus::Failed);
    EXPECT_TRUE(broken.cancelled);
    EXPECT_EQ(broken.sequences, 0u);

    // Governance hooks were cleared after the failed run (the Budget they
    // pointed at was stack-local): a later validation runs clean.
    const api::FaultSimReport clean = session.fault_sim();
    EXPECT_TRUE(clean.outcome.ok());
    EXPECT_GT(clean.detected, 0u);
}

// ---------------------------------------------------------------------------
// Cancelled-session reuse (the stale-state regression test): a Session whose
// stage was cancelled must re-run the stage on the next no-arg call instead
// of serving the partial result forever.

TEST(SessionReuse, CancelledLearnIsRerunNotServedStale) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult golden = testing::learn(nl, exec_cfg(1, 0));

    int calls = 0;
    api::SessionConfig scfg;
    scfg.threads = 1;
    scfg.progress = [&calls](const api::Progress& p) {
        // Cancel the very first learn run at its first stem; observe only
        // afterwards.
        return !(p.stage == api::Stage::Learn && calls++ == 0);
    };
    api::Session session(netlist::Netlist(nl), std::move(scfg));

    const core::LearnResult& partial = session.learn();
    EXPECT_EQ(partial.outcome.status, RunStatus::Cancelled);
    EXPECT_TRUE(partial.stats.cancelled);
    EXPECT_LT(partial.stats.stems_processed, golden.stats.stems_processed);

    // Before the fix this returned the cancelled partial result unchanged.
    const core::LearnResult& reran = session.learn();
    EXPECT_TRUE(reran.outcome.ok());
    expect_same_result(reran, golden, "rerun after cancel");

    // And downstream stages consume the complete result.
    const api::AtpgReport& report = session.atpg();
    EXPECT_TRUE(report.outcome.run.ok());
}

TEST(SessionReuse, BudgetStoppedLearnIsRerunByNoArgCall) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    api::Session session{netlist::Netlist(nl)};
    LearnConfig budgeted = exec_cfg(1, 0);
    budgeted.budget.max_items = 3;
    const core::LearnResult& partial = session.learn(budgeted);
    EXPECT_EQ(partial.outcome.status, RunStatus::LimitReached);
    const core::LearnResult& full = session.learn();
    EXPECT_TRUE(full.outcome.ok());
    EXPECT_GT(full.stats.stems_processed, 3u);
}

// ---------------------------------------------------------------------------
// Deterministic budgets and checkpoint/resume.

TEST(Budget, ItemLimitStopsAtTheSameUnitAtAnyThreadCountOrBatchWidth) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    LearnConfig serial = exec_cfg(1, 0);
    serial.budget.max_items = 7;
    const LearnResult want = core::learn(nl, netlist::Topology(nl), serial);
    ASSERT_EQ(want.outcome.status, RunStatus::LimitReached);
    ASSERT_TRUE(want.cursor.valid);
    EXPECT_EQ(want.stats.stems_processed, 7u);

    for (const unsigned threads : {2u, 8u}) {
        for (const std::size_t lanes : {std::size_t{0}, std::size_t{64}}) {
            LearnConfig cfg = exec_cfg(threads, lanes);
            cfg.budget.max_items = 7;
            const LearnResult got = core::learn(nl, netlist::Topology(nl), cfg);
            const std::string ctx =
                "threads=" + std::to_string(threads) + " lanes=" + std::to_string(lanes);
            EXPECT_EQ(got.outcome.status, RunStatus::LimitReached) << ctx;
            EXPECT_EQ(got.cursor.unit, want.cursor.unit) << ctx;
            EXPECT_EQ(got.cursor.in_multi, want.cursor.in_multi) << ctx;
            EXPECT_EQ(got.cursor.class_index, want.cursor.class_index) << ctx;
            EXPECT_EQ(got.stats.stems_processed, want.stats.stems_processed) << ctx;
            // The partial result is bit-identical to the serial prefix.
            EXPECT_EQ(relation_hash(got.db), relation_hash(want.db)) << ctx;
            EXPECT_EQ(got.ties.dense(), want.ties.dense()) << ctx;
        }
    }
}

TEST(Checkpoint, ResumeConvergesToOneShotAtEveryStopBoundary) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const netlist::Topology topo(nl);
    const LearnConfig base = exec_cfg(1, 0);
    const LearnResult golden = core::learn(nl, topo, base);
    ASSERT_TRUE(golden.outcome.ok());

    // Exhaustive: every stop boundary of the schedule, until a limit no
    // longer interrupts the run. The circuit is tiny, so this is cheap.
    bool hit_multi_phase = false;
    for (std::size_t limit = 1; limit < 10000; ++limit) {
        LearnConfig budgeted = base;
        budgeted.budget.max_items = limit;
        const LearnResult partial = core::learn(nl, topo, budgeted);
        if (partial.outcome.ok()) break;  // limit past the full schedule
        ASSERT_EQ(partial.outcome.status, RunStatus::LimitReached) << "limit=" << limit;
        ASSERT_TRUE(partial.cursor.valid) << "limit=" << limit;
        hit_multi_phase = hit_multi_phase || partial.cursor.in_multi;

        const LearnCheckpoint ckpt = make_checkpoint(nl, partial);
        const LearnResult resumed = resume_learn(nl, topo, base, ckpt);
        EXPECT_TRUE(resumed.outcome.ok()) << "limit=" << limit;
        expect_same_result(resumed, golden, "limit=" + std::to_string(limit));
    }
    // The sweep crossed the single-node -> multiple-node phase boundary
    // (otherwise the in_multi resume path went untested).
    EXPECT_TRUE(hit_multi_phase);
}

TEST(Checkpoint, TextRoundTripPreservesTheResumeExactly) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const netlist::Topology topo(nl);
    const LearnConfig base = exec_cfg(1, 0);
    const LearnResult golden = core::learn(nl, topo, base);

    LearnConfig budgeted = base;
    budgeted.budget.max_items = 9;
    const LearnResult partial = core::learn(nl, topo, budgeted);
    ASSERT_TRUE(partial.cursor.valid);
    const LearnCheckpoint ckpt = make_checkpoint(nl, partial);

    std::stringstream ss;
    save_checkpoint(ss, nl, ckpt);
    const LearnCheckpoint loaded = load_checkpoint(ss, nl);
    EXPECT_EQ(loaded.cursor.class_index, ckpt.cursor.class_index);
    EXPECT_EQ(loaded.cursor.in_multi, ckpt.cursor.in_multi);
    EXPECT_EQ(loaded.cursor.unit, ckpt.cursor.unit);
    EXPECT_EQ(loaded.cursor.config_digest, ckpt.cursor.config_digest);
    EXPECT_EQ(loaded.stems_processed, ckpt.stems_processed);
    EXPECT_EQ(relation_hash(loaded.db), relation_hash(ckpt.db));
    EXPECT_EQ(loaded.ties.dense(), ckpt.ties.dense());
    EXPECT_EQ(loaded.records.total_records(), ckpt.records.total_records());
    EXPECT_EQ(loaded.records.cap(), ckpt.records.cap());

    const LearnResult resumed = resume_learn(nl, topo, base, loaded);
    expect_same_result(resumed, golden, "text round-trip resume");
}

TEST(Checkpoint, ResumeUnderDifferentExecutionConfigMatchesGolden) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const netlist::Topology topo(nl);
    const LearnResult golden = core::learn(nl, topo, exec_cfg(1, 0));

    LearnConfig budgeted = exec_cfg(1, 0);
    budgeted.budget.max_items = 11;
    const LearnResult partial = core::learn(nl, topo, budgeted);
    ASSERT_TRUE(partial.cursor.valid);
    const LearnCheckpoint ckpt = make_checkpoint(nl, partial);

    // threads/batch_lanes/budget are execution-only: the digest admits them
    // and the resumed result is still bit-identical.
    for (const auto& [threads, lanes] :
         {std::pair<unsigned, std::size_t>{8, 0}, {2, 64}, {8, 64}}) {
        const LearnResult resumed =
            resume_learn(nl, topo, exec_cfg(threads, lanes), ckpt);
        expect_same_result(resumed, golden,
                           "threads=" + std::to_string(threads) +
                               " lanes=" + std::to_string(lanes));
    }
}

TEST(Checkpoint, MismatchesAreRejected) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const netlist::Topology topo(nl);
    const LearnConfig base = exec_cfg(1, 0);

    // A completed run is not checkpointable.
    const LearnResult complete = core::learn(nl, topo, base);
    EXPECT_THROW(make_checkpoint(nl, complete), std::logic_error);

    LearnConfig budgeted = base;
    budgeted.budget.max_items = 5;
    const LearnResult partial = core::learn(nl, topo, budgeted);
    const LearnCheckpoint ckpt = make_checkpoint(nl, partial);

    // Result-affecting config change: rejected.
    LearnConfig deeper = base;
    deeper.max_frames = 7;
    EXPECT_THROW(resume_learn(nl, topo, deeper, ckpt), std::invalid_argument);

    // Different circuit: rejected (by name even when sizes coincide).
    const netlist::Netlist other = testing::random_circuit(99, 6, 5, 30);
    EXPECT_THROW(resume_learn(other, netlist::Topology(other), base, ckpt),
                 std::invalid_argument);
}

TEST(Checkpoint, SessionResumeApiRoundTrips) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult golden = testing::learn(nl, exec_cfg(1, 0));

    api::SessionConfig scfg;
    scfg.threads = 1;
    scfg.learn.batch_lanes = 0;
    api::Session session(netlist::Netlist(nl), std::move(scfg));
    std::stringstream none;
    EXPECT_THROW(session.save_checkpoint(none), std::logic_error);  // nothing resumable

    LearnConfig budgeted = exec_cfg(1, 0);
    budgeted.budget.max_items = 6;
    const core::LearnResult& partial = session.learn(budgeted);
    ASSERT_TRUE(partial.cursor.valid);
    std::stringstream ss;
    session.save_checkpoint(ss);

    api::SessionConfig scfg2;
    scfg2.threads = 1;
    scfg2.learn.batch_lanes = 0;
    api::Session fresh(netlist::Netlist(nl), std::move(scfg2));
    const core::LearnResult& resumed = fresh.resume_learn(ss);
    EXPECT_TRUE(resumed.outcome.ok());
    expect_same_result(resumed, golden, "session resume");
}

// ---------------------------------------------------------------------------
// Cancellation under parallel execution: a cancel raised mid-run from
// another thread stops every exec path without deadlock and leaves state
// reusable. (TSan coverage for the cancel/budget polling added this issue.)

TEST(Cancellation, MidRunCancelFromAnotherThreadStopsAllExecPaths) {
    const netlist::Netlist nl = testing::random_circuit(21, 6, 5, 30);
    for (const auto& [threads, lanes] :
         {std::pair<unsigned, std::size_t>{4, 0}, {4, 64}}) {
        api::SessionConfig scfg;
        scfg.threads = threads;
        scfg.learn.batch_lanes = lanes;
        api::Session session{netlist::Netlist(nl), std::move(scfg)};
        std::thread canceller([&session] { session.request_cancel(); });
        const core::LearnResult& r = session.learn();
        canceller.join();
        // Either the cancel landed before/inside the run (Cancelled) or the
        // run won the race and completed; both must leave the session sound.
        if (!r.outcome.ok())
            EXPECT_EQ(r.outcome.status, RunStatus::Cancelled);
        const core::LearnResult& rerun = session.learn();
        EXPECT_TRUE(rerun.outcome.ok());
    }
}

}  // namespace
}  // namespace seqlearn::core
