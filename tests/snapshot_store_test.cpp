// Durable snapshot store: crash-safety, recovery, quarantine, and the
// warm-restart serving path.
//
// What is pinned here:
//   * put -> fetch round-trips bytes exactly, and survives closing and
//     re-opening the store (the restart case).
//   * The recovery scan never crashes on hostile directory contents: an
//     entry truncated at (or inside) every section, a bit-flipped header,
//     or trailing garbage is quarantined (renamed aside, counted, dropped
//     from the index); leftover temp files from an interrupted put are
//     deleted.
//   * Injected filesystem failures (short write / fsync EIO / failed
//     rename, via the exec::FailurePoint I/O sites) make put() fail
//     cleanly: error set, no temp litter, and the *previous* entry contents
//     still served — the crash-safety invariant, observed from userspace.
//   * Disk LRU: inserting past the byte budget unlinks the
//     least-recently-used entry file.
//   * End to end through the Service: a learn on one Service instance
//     writes through; a *fresh* Service sharing the store directory answers
//     stats/learn/atpg on that digest warm — same relation hash, no
//     re-learn. A stored blob whose deep validation fails (flipped netlist
//     digest) is quarantined and the design re-learns instead of serving
//     corrupt data.

#include "server/snapshot_store.hpp"

#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/topology.hpp"
#include "server/design_cache.hpp"
#include "server/json.hpp"
#include "server/service.hpp"
#include "workload/suite.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace seqlearn {
namespace {

using server::JsonValue;
using server::SnapshotStore;
using server::SnapshotStoreConfig;
using server::SnapshotStoreStats;
using server::StoredSnapshot;

/// Self-cleaning temp directory under /tmp.
struct TempDir {
    std::string path;
    TempDir() {
        char tmpl[] = "/tmp/seqlearn_store_XXXXXX";
        path = ::mkdtemp(tmpl);
        EXPECT_FALSE(path.empty());
    }
    ~TempDir() {
        if (DIR* d = ::opendir(path.c_str())) {
            while (const dirent* ent = ::readdir(d)) {
                const std::string name = ent->d_name;
                if (name != "." && name != "..")
                    ::unlink((path + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path.c_str());
    }
};

std::vector<std::string> dir_entries(const std::string& dir) {
    std::vector<std::string> names;
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* ent = ::readdir(d)) {
            const std::string name = ent->d_name;
            if (name != "." && name != "..") names.push_back(name);
        }
        ::closedir(d);
    }
    return names;
}

void write_raw(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_raw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

/// A real (bench, learned-blob, digest) triple from the suite's s27.
struct LearnedDesign {
    std::string bench;
    std::string learned;
    std::uint64_t digest = 0;
};

const LearnedDesign& s27_learned() {
    static const LearnedDesign* cached = [] {
        auto* d = new LearnedDesign;
        const netlist::Netlist nl = workload::suite_circuit("s27");
        d->bench = netlist::write_bench_string(nl);
        d->digest = server::content_digest(d->bench);
        const core::LearnResult res =
            core::learn(nl, netlist::Topology(nl), core::LearnConfig{});
        std::ostringstream out;
        core::save_learned_binary(out, nl, res.db, res.ties);
        d->learned = std::move(out).str();
        return d;
    }();
    return *cached;
}

std::unique_ptr<SnapshotStore> open_store(const std::string& dir,
                                          std::size_t max_bytes = 0,
                                          exec::FailurePoint* fp = nullptr) {
    SnapshotStoreConfig cfg;
    cfg.dir = dir;
    cfg.max_bytes = max_bytes;
    cfg.failpoint = fp;
    std::string error;
    std::unique_ptr<SnapshotStore> store = SnapshotStore::open(std::move(cfg), &error);
    EXPECT_NE(store, nullptr) << error;
    return store;
}

// --- round trip and restart -------------------------------------------------

TEST(SnapshotStore, PutFetchRoundTripsExactBytes) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    auto store = open_store(tmp.path);
    ASSERT_NE(store, nullptr);

    std::string error;
    ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;
    EXPECT_TRUE(store->contains(d.digest));

    const std::optional<StoredSnapshot> got = store->fetch(d.digest);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->digest, d.digest);
    EXPECT_EQ(got->bench, d.bench);
    EXPECT_EQ(got->learned, d.learned);

    const SnapshotStoreStats s = store->stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.fetch_hits, 1u);
    EXPECT_EQ(s.quarantined, 0u);
    EXPECT_GT(s.bytes, d.bench.size() + d.learned.size());
}

TEST(SnapshotStore, EntriesSurviveReopen) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    {
        auto store = open_store(tmp.path);
        ASSERT_NE(store, nullptr);
        std::string error;
        ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;
    }
    auto reopened = open_store(tmp.path);
    ASSERT_NE(reopened, nullptr);
    EXPECT_TRUE(reopened->contains(d.digest));
    const std::optional<StoredSnapshot> got = reopened->fetch(d.digest);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->bench, d.bench);
    EXPECT_EQ(got->learned, d.learned);
    EXPECT_EQ(reopened->stats().quarantined, 0u);
}

TEST(SnapshotStore, FetchOfUnknownDigestMisses) {
    TempDir tmp;
    auto store = open_store(tmp.path);
    ASSERT_NE(store, nullptr);
    EXPECT_FALSE(store->fetch(0xdeadbeefULL).has_value());
    EXPECT_EQ(store->stats().fetch_misses, 1u);
}

// --- recovery scan vs hostile directory contents ----------------------------

TEST(SnapshotStore, RecoveryScanQuarantinesEveryTornVariant) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    std::string entry_bytes;
    {
        auto store = open_store(tmp.path);
        ASSERT_NE(store, nullptr);
        std::string error;
        ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;
        entry_bytes = read_raw(tmp.path + "/" + server::hex_u64(d.digest) + ".snap");
        ASSERT_FALSE(entry_bytes.empty());
    }

    // Truncation at (and inside) every section of the entry file, plus a
    // bit-flipped magic and appended garbage. Each variant must quarantine
    // on the next open — never crash, never index.
    constexpr std::size_t kHeader = 40;
    const std::size_t bench_end = kHeader + d.bench.size();
    const std::vector<std::size_t> cut_points = {
        0,                       // empty file
        4,                       // inside the magic
        kHeader / 2,             // inside the header
        kHeader,                 // header only, no payload
        kHeader + 1,             // one byte of bench
        bench_end - 1,           // bench torn
        bench_end,               // learned section missing entirely
        bench_end + 8,           // learned header torn
        entry_bytes.size() - 1,  // last byte lost
    };
    struct Variant {
        std::string label;
        std::string bytes;
    };
    std::vector<Variant> variants;
    for (const std::size_t cut : cut_points)
        variants.push_back({"truncated@" + std::to_string(cut),
                            entry_bytes.substr(0, cut)});
    std::string flipped = entry_bytes;
    flipped[0] ^= 0x40;  // magic no longer matches
    variants.push_back({"flipped-magic", flipped});
    std::string wrong_version = entry_bytes;
    wrong_version[8] ^= 0xff;
    variants.push_back({"flipped-version", wrong_version});
    variants.push_back({"trailing-garbage", entry_bytes + "xx"});

    const std::string path = tmp.path + "/" + server::hex_u64(d.digest) + ".snap";
    for (const Variant& v : variants) {
        // Clear quarantined leftovers from the previous variant so counts
        // and directory scans stay per-variant.
        for (const std::string& name : dir_entries(tmp.path))
            ::unlink((tmp.path + "/" + name).c_str());
        write_raw(path, v.bytes);

        auto store = open_store(tmp.path);
        ASSERT_NE(store, nullptr) << v.label;
        EXPECT_FALSE(store->contains(d.digest)) << v.label;
        const SnapshotStoreStats s = store->stats();
        EXPECT_EQ(s.entries, 0u) << v.label;
        EXPECT_EQ(s.quarantined, 1u) << v.label;
        // The corrupt bytes are set aside under a .quarantined name, and
        // nothing answers to the entry name anymore.
        bool found_quarantined = false;
        for (const std::string& name : dir_entries(tmp.path)) {
            EXPECT_NE(name, server::hex_u64(d.digest) + ".snap") << v.label;
            if (name.find(".quarantined") != std::string::npos)
                found_quarantined = true;
        }
        EXPECT_TRUE(found_quarantined) << v.label;
    }
}

TEST(SnapshotStore, RecoveryScanDeletesLeftoverTempFiles) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    const std::string temp_name =
        tmp.path + "/" + server::hex_u64(d.digest) + ".snap.tmp.12345";
    write_raw(temp_name, "half-written garbage");
    auto store = open_store(tmp.path);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(::access(temp_name.c_str(), F_OK), -1)
        << "interrupted put's temp file must be cleaned up";
    EXPECT_EQ(store->stats().entries, 0u);
}

TEST(SnapshotStore, ScanIgnoresForeignFiles) {
    TempDir tmp;
    write_raw(tmp.path + "/README.txt", "not a snapshot");
    auto store = open_store(tmp.path);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->stats().entries, 0u);
    EXPECT_EQ(store->stats().quarantined, 0u);
    EXPECT_EQ(::access((tmp.path + "/README.txt").c_str(), F_OK), 0)
        << "foreign files must be left alone";
}

// --- injected filesystem failures -------------------------------------------

TEST(SnapshotStore, InjectedFsFailuresNeverTearTheStoredEntry) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    exec::FailurePoint fp;
    auto store = open_store(tmp.path, 0, &fp);
    ASSERT_NE(store, nullptr);

    std::string error;
    ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;

    // A second put of different content fails at each fs site in turn; the
    // first put's bytes must keep being served, with no temp litter.
    const std::string bench2 = d.bench + "# trailing comment\n";
    for (const exec::FailSite site :
         {exec::FailSite::FsWrite, exec::FailSite::FsFsync, exec::FailSite::FsRename}) {
        fp.arm(site, 1);
        error.clear();
        EXPECT_FALSE(store->put(d.digest, bench2, d.learned, &error))
            << exec::fail_site_name(site);
        EXPECT_FALSE(error.empty()) << exec::fail_site_name(site);
        fp.disarm();

        const std::optional<StoredSnapshot> got = store->fetch(d.digest);
        ASSERT_TRUE(got.has_value()) << exec::fail_site_name(site);
        EXPECT_EQ(got->bench, d.bench) << exec::fail_site_name(site);
        EXPECT_EQ(got->learned, d.learned) << exec::fail_site_name(site);
        for (const std::string& name : dir_entries(tmp.path))
            EXPECT_EQ(name.find(".tmp."), std::string::npos)
                << exec::fail_site_name(site) << " left " << name;
    }
    EXPECT_EQ(store->stats().put_failures, 3u);
}

// --- disk LRU ---------------------------------------------------------------

TEST(SnapshotStore, ByteBudgetEvictsLeastRecentlyUsedEntryFile) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    // Budget fits one entry, not two.
    const std::size_t entry_size = 40 + d.bench.size() + d.learned.size();
    auto store = open_store(tmp.path, entry_size + entry_size / 2);
    ASSERT_NE(store, nullptr);

    const std::string bench_b = d.bench + "# variant\n";
    const std::uint64_t digest_b = server::content_digest(bench_b);
    std::string error;
    ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;
    ASSERT_TRUE(store->put(digest_b, bench_b, d.learned, &error)) << error;

    EXPECT_FALSE(store->contains(d.digest)) << "LRU entry should be evicted";
    EXPECT_TRUE(store->contains(digest_b));
    EXPECT_EQ(store->stats().evictions, 1u);
    EXPECT_EQ(::access((tmp.path + "/" + server::hex_u64(d.digest) + ".snap").c_str(),
                       F_OK),
              -1)
        << "evicted entry file must be unlinked";
}

TEST(SnapshotStore, ExplicitQuarantineDropsEntry) {
    const LearnedDesign& d = s27_learned();
    TempDir tmp;
    auto store = open_store(tmp.path);
    ASSERT_NE(store, nullptr);
    std::string error;
    ASSERT_TRUE(store->put(d.digest, d.bench, d.learned, &error)) << error;
    store->quarantine(d.digest);
    EXPECT_FALSE(store->contains(d.digest));
    EXPECT_FALSE(store->fetch(d.digest).has_value());
    EXPECT_EQ(store->stats().quarantined, 1u);
}

// --- end to end through the Service -----------------------------------------

std::string load_frame(const std::string& bench) {
    return "{\"cmd\": \"load\", \"name\": \"s27\", \"bench\": \"" +
           server::json_escape(bench) + "\"}";
}

TEST(SnapshotStoreService, WarmRestartServesStoredLearnWithoutRelearning) {
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("s27"));
    TempDir tmp;

    std::string digest;
    std::string relation_hash;
    {
        server::ServiceConfig cfg;
        cfg.store = open_store(tmp.path);
        ASSERT_NE(cfg.store, nullptr);
        server::Service svc(cfg);
        std::string err;
        const auto loaded = JsonValue::parse(svc.handle(load_frame(bench)), &err);
        ASSERT_TRUE(loaded.has_value()) << err;
        digest = loaded->get_string("design");
        ASSERT_FALSE(digest.empty());
        const auto learned = JsonValue::parse(
            svc.handle("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}"), &err);
        ASSERT_TRUE(learned.has_value()) << err;
        ASSERT_TRUE(learned->get_bool("ok"));
        relation_hash = learned->get_string("relation_hash");
        ASSERT_FALSE(relation_hash.empty());
        EXPECT_EQ(cfg.store->stats().puts, 1u) << "first learn must write through";
    }

    // A fresh Service over the same directory: no load, no learn — the
    // digest resolves through the store and stats serves the learned hash.
    server::ServiceConfig cfg;
    cfg.store = open_store(tmp.path);
    ASSERT_NE(cfg.store, nullptr);
    server::Service restarted(cfg);
    std::string err;
    const auto stats = JsonValue::parse(
        restarted.handle("{\"cmd\": \"stats\", \"design\": \"" + digest + "\"}"), &err);
    ASSERT_TRUE(stats.has_value()) << err;
    ASSERT_TRUE(stats->get_bool("ok"))
        << "warm restart must resolve a stored design without a load";
    const JsonValue* learned = stats->get("learned");
    ASSERT_NE(learned, nullptr) << "stored learned snapshot must re-attach";
    EXPECT_EQ(learned->get_string("relation_hash"), relation_hash)
        << "recovered snapshot must hash-match the pre-restart learn";

    // learn on the restarted service is warm: served from the recovered
    // snapshot, not recomputed.
    const auto warm = JsonValue::parse(
        restarted.handle("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}"), &err);
    ASSERT_TRUE(warm.has_value()) << err;
    EXPECT_TRUE(warm->get_bool("ok"));
    EXPECT_TRUE(warm->get_bool("warm"));
    EXPECT_EQ(warm->get_string("relation_hash"), relation_hash);
    EXPECT_EQ(cfg.store->stats().fetch_hits, 1u);
}

TEST(SnapshotStoreService, CorruptStoredBlobIsQuarantinedAndRelearned) {
    const std::string bench =
        netlist::write_bench_string(workload::suite_circuit("s27"));
    TempDir tmp;

    std::string digest;
    std::string relation_hash;
    {
        server::ServiceConfig cfg;
        cfg.store = open_store(tmp.path);
        ASSERT_NE(cfg.store, nullptr);
        server::Service svc(cfg);
        std::string err;
        const auto loaded = JsonValue::parse(svc.handle(load_frame(bench)), &err);
        ASSERT_TRUE(loaded.has_value()) << err;
        digest = loaded->get_string("design");
        const auto learned = JsonValue::parse(
            svc.handle("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}"), &err);
        ASSERT_TRUE(learned.has_value()) << err;
        relation_hash = learned->get_string("relation_hash");
    }

    // Flip a byte inside the learned blob's netlist-digest field: the entry
    // stays structurally valid (scan and fetch accept it) but the deep
    // attach-time check must reject it.
    const std::string path =
        tmp.path + "/" + server::hex_u64(server::content_digest(bench)) + ".snap";
    std::string bytes = read_raw(path);
    ASSERT_FALSE(bytes.empty());
    const std::size_t learned_off = 40 + bench.size();
    ASSERT_LT(learned_off + 24, bytes.size());
    bytes[learned_off + 16] = static_cast<char>(bytes[learned_off + 16] ^ 0x5a);
    write_raw(path, bytes);

    server::ServiceConfig cfg;
    cfg.store = open_store(tmp.path);
    ASSERT_NE(cfg.store, nullptr);
    server::Service restarted(cfg);
    std::string err;
    // The design still resolves (recompiled from the stored bench); the
    // corrupt learned blob is quarantined, never served.
    const auto learned2 = JsonValue::parse(
        restarted.handle("{\"cmd\": \"learn\", \"design\": \"" + digest + "\"}"), &err);
    ASSERT_TRUE(learned2.has_value()) << err;
    ASSERT_TRUE(learned2->get_bool("ok"));
    EXPECT_FALSE(learned2->get_bool("warm")) << "corrupt blob must not serve warm";
    EXPECT_EQ(learned2->get_string("relation_hash"), relation_hash)
        << "re-learn must reproduce the original result";
    EXPECT_GE(cfg.store->stats().quarantined, 1u);
}

}  // namespace
}  // namespace seqlearn
