// Tests for the streaming .bench reader: diagnostics on every error path
// (malformed lines, undefined/duplicate signals, truncated files), warning
// semantics (first definition wins, pragmas for unknown elements ignored),
// chunk-boundary handling, and a generated >=100k-gate circuit round-tripped
// through the streaming pass with structural identity to the original.

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace seqlearn::netlist {
namespace {

BenchReadResult parse(std::string_view text) {
    std::istringstream in{std::string(text)};
    return read_bench_diag(in, "t");
}

bool has_error_at(const Diagnostics& d, std::uint32_t line) {
    return std::any_of(d.records().begin(), d.records().end(), [&](const Diagnostic& r) {
        return r.severity == Severity::Error && r.line == line;
    });
}

bool has_warning_at(const Diagnostics& d, std::uint32_t line) {
    return std::any_of(d.records().begin(), d.records().end(), [&](const Diagnostic& r) {
        return r.severity == Severity::Warning && r.line == line;
    });
}

TEST(BenchDiag, CleanInputParsesWithoutDiagnostics) {
    const BenchReadResult r = parse("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_EQ(r.netlist->size(), 2u);
}

TEST(BenchDiag, FinalLineWithoutNewlineParses) {
    const BenchReadResult r = parse("INPUT(a)\ng = NOT(a)\nOUTPUT(g)");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.netlist->outputs().size(), 1u);
}

TEST(BenchDiag, MalformedLinesAreLineNumberedErrors) {
    // Every malformed line is reported — the pass does not stop at the
    // first problem the way the old reader did.
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "INPUT b\n"          // line 2: no parens
        "g = (a)\n"          // line 3: malformed assignment (empty type)
        "h NOT(a)\n"         // line 4: no '='
        "k = FROB(a)\n"      // line 5: unknown gate type
        "m = NOT(a, a)\n"    // line 6: arity
        "d = DFF(a, a)\n");  // line 7: DFF arity
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_error_at(r.diagnostics, 2));
    EXPECT_TRUE(has_error_at(r.diagnostics, 3));
    EXPECT_TRUE(has_error_at(r.diagnostics, 4));
    EXPECT_TRUE(has_error_at(r.diagnostics, 5));
    EXPECT_TRUE(has_error_at(r.diagnostics, 6));
    EXPECT_TRUE(has_error_at(r.diagnostics, 7));
    EXPECT_GE(r.diagnostics.error_count(), 6u);
}

TEST(BenchDiag, UndefinedSignalsAreErrors) {
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "g = AND(a, ghost)\n"   // line 2: undeclared fanin
        "OUTPUT(phantom)\n");   // line 3: undeclared output
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_error_at(r.diagnostics, 2));
    EXPECT_TRUE(has_error_at(r.diagnostics, 3));
}

TEST(BenchDiag, DuplicateDefinitionsWarnAndFirstWins) {
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "INPUT(b)\n"
        "g = AND(a, b)\n"
        "g = OR(a, b)\n"  // line 4: duplicate — warning, AND wins
        "OUTPUT(g)\n");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(has_warning_at(r.diagnostics, 4));
    EXPECT_EQ(r.diagnostics.warning_count(), 1u);
    EXPECT_EQ(r.netlist->type(r.netlist->find("g")), GateType::And);
}

TEST(BenchDiag, DuplicateOutputWarns) {
    const BenchReadResult r = parse("INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(has_warning_at(r.diagnostics, 3));
    EXPECT_EQ(r.netlist->outputs().size(), 1u);
}

TEST(BenchDiag, CombinationalCycleIsAnError) {
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "x = AND(a, y)\n"
        "y = OR(a, x)\n"
        "OUTPUT(y)\n");
    EXPECT_FALSE(r.ok());
    EXPECT_GE(r.diagnostics.error_count(), 1u);
    EXPECT_NE(r.diagnostics.first_error(), nullptr);
}

TEST(BenchDiag, PragmaForUnknownElementIsIgnoredWithWarning) {
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "f = DFF(a)\n"
        "OUTPUT(f)\n"
        "#@ seq nosuch clock=1\n"   // line 4: unknown element
        "#@ seq a clock=1\n"        // line 5: known but not sequential
        "#@ frob whatever\n");      // line 6: unknown pragma
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(has_warning_at(r.diagnostics, 4));
    EXPECT_TRUE(has_warning_at(r.diagnostics, 5));
    EXPECT_TRUE(has_warning_at(r.diagnostics, 6));
    EXPECT_EQ(r.netlist->seq_attrs(r.netlist->find("f")).clock_id, 0);
}

TEST(BenchDiag, MalformedPragmaValuesAreErrors) {
    EXPECT_FALSE(parse("INPUT(a)\nf = DFF(a)\n#@ seq f clock=banana\n").ok());
    EXPECT_FALSE(parse("INPUT(a)\nf = DFF(a)\n#@ seq f sr=sideways\n").ok());
    EXPECT_FALSE(parse("INPUT(a)\nf = DFF(a)\n#@ seq\n").ok());
    // A misspelled key would silently mis-clock the element: error, not a
    // warning (and hence still fatal through the legacy throwing reader).
    EXPECT_FALSE(parse("INPUT(a)\nf = DFF(a)\n#@ seq f clokc=2\n").ok());
}

TEST(BenchDiag, TruncatedFileMidLineStillReportsTheTail) {
    // A file cut mid-declaration: the final partial line is parsed as far
    // as it goes and diagnosed, never silently dropped.
    const BenchReadResult r = parse(
        "INPUT(a)\n"
        "g = AND(a");  // truncated: no closing paren, no newline
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_error_at(r.diagnostics, 2));
}

TEST(BenchDiag, BuilderSucceedsDespitePreloadedDiagnostics) {
    // build(Diagnostics&) judges success by the errors IT records, so a
    // caller merging several passes into one report can reuse the object.
    Diagnostics diags;
    diags.error(1, "unrelated error from an earlier pass");
    NetlistBuilder b;
    b.input("a");
    b.output("a");
    const std::optional<Netlist> nl = b.build(diags);
    ASSERT_TRUE(nl.has_value());
    EXPECT_EQ(diags.error_count(), 1u);  // nothing new recorded
}

TEST(BenchDiag, LegacyReaderThrowsWithLineNumber) {
    try {
        read_bench_string("INPUT(a)\ng = FROB(a)\n");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("bench:2"), std::string::npos) << e.what();
    }
}

TEST(BenchDiag, DiagnosticsToStringIsLineOriented) {
    const BenchReadResult r = parse("INPUT a\n");
    const std::string report = r.diagnostics.to_string("file.bench");
    EXPECT_NE(report.find("file.bench:1: error:"), std::string::npos) << report;
}

TEST(BenchDiag, LinesSpanningChunkBoundariesParse) {
    // Force declarations across the scanner's 64 KiB refill boundary: a
    // long run of comment padding followed by real declarations, so the
    // interesting lines straddle chunk edges.
    std::string text;
    text.reserve(70 * 1024);
    text += "INPUT(a)\n";
    while (text.size() < 64 * 1024 - 20) text += "# padding comment line\n";
    text += "longname_spanning_the_chunk_boundary_0123456789 = NOT(a)\n";
    text += "g = AND(a, longname_spanning_the_chunk_boundary_0123456789)\n";
    text += "OUTPUT(g)\n";
    const BenchReadResult r = parse(text);
    ASSERT_TRUE(r.ok()) << r.diagnostics.to_string();
    EXPECT_NE(r.netlist->find("longname_spanning_the_chunk_boundary_0123456789"),
              kNoGate);
}

TEST(BenchDiag, ParityWithSuiteCircuitsThroughWriteRead) {
    // Existing circuits must parse to netlists identical to the in-memory
    // originals (gate ids, types, fanin order, outputs, attributes) — the
    // old-reader parity contract, checked structurally here and pinned
    // behaviourally by the learn goldens in determinism_test.
    for (const char* name : {"s27", "fig1x", "rt510a", "gen382"}) {
        const Netlist a = workload::suite_circuit(name);
        std::istringstream in(write_bench_string(a));
        const BenchReadResult r = read_bench_diag(in, a.name());
        ASSERT_TRUE(r.ok()) << name << "\n" << r.diagnostics.to_string();
        EXPECT_TRUE(r.diagnostics.empty()) << name;
        const Netlist& b = *r.netlist;
        ASSERT_EQ(a.size(), b.size()) << name;
        for (GateId id = 0; id < a.size(); ++id) {
            const GateId bid = b.find(a.name_of(id));
            ASSERT_NE(bid, kNoGate) << name << " " << a.name_of(id);
            EXPECT_EQ(a.type(id), b.type(bid));
            ASSERT_EQ(a.fanins(id).size(), b.fanins(bid).size());
            for (std::size_t i = 0; i < a.fanins(id).size(); ++i)
                EXPECT_EQ(a.name_of(a.fanins(id)[i]), b.name_of(b.fanins(bid)[i]));
        }
        ASSERT_EQ(a.outputs().size(), b.outputs().size()) << name;
        for (std::size_t i = 0; i < a.outputs().size(); ++i)
            EXPECT_EQ(a.name_of(a.outputs()[i]), b.name_of(b.outputs()[i]));
        for (const GateId s : a.seq_elements()) {
            const SeqAttrs& sa = a.seq_attrs(s);
            const SeqAttrs& sb = b.seq_attrs(b.find(a.name_of(s)));
            EXPECT_EQ(sa.clock_id, sb.clock_id);
            EXPECT_EQ(sa.phase, sb.phase);
            EXPECT_EQ(sa.set_reset, sb.set_reset);
            EXPECT_EQ(sa.sr_unconstrained, sb.sr_unconstrained);
            EXPECT_EQ(sa.num_ports, sb.num_ports);
        }
    }
}

TEST(BenchDiag, HundredThousandGateCircuitRoundTrips) {
    // The scaling target: a generated >=100k-gate design written to .bench
    // and streamed back in one pass. Structural identity gate by gate.
    workload::GenParams p = workload::iscas_like("big100k", 2000, 100000, 77);
    const Netlist a = workload::generate(p);
    ASSERT_GE(a.size(), 100000u);
    std::istringstream in(write_bench_string(a));
    const BenchReadResult r = read_bench_diag(in, "big100k");
    ASSERT_TRUE(r.ok()) << r.diagnostics.to_string();
    EXPECT_TRUE(r.diagnostics.empty());
    const Netlist& b = *r.netlist;
    ASSERT_EQ(a.size(), b.size());
    // Gate ids must match one for one, not merely names: the reader's
    // emission order is part of the parity contract (learn goldens and
    // campaign digests depend on it).
    for (GateId id = 0; id < a.size(); ++id) {
        ASSERT_EQ(a.name_of(id), b.name_of(id)) << "gate id " << id;
        ASSERT_EQ(a.type(id), b.type(id)) << "gate id " << id;
        ASSERT_EQ(a.fanins(id).size(), b.fanins(id).size()) << "gate id " << id;
        for (std::size_t i = 0; i < a.fanins(id).size(); ++i)
            ASSERT_EQ(a.fanins(id)[i], b.fanins(id)[i]) << "gate id " << id;
    }
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    for (std::size_t i = 0; i < a.outputs().size(); ++i)
        EXPECT_EQ(a.outputs()[i], b.outputs()[i]);
}

}  // namespace
}  // namespace seqlearn::netlist
