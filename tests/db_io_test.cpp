// Round-trip tests for the learned-data persistence format (core::db_io)
// and its Session-level entry points (save_db / load_db).

#include "api/session.hpp"
#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "test_helpers.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace seqlearn::core {
namespace {

using netlist::GateId;
using netlist::Netlist;

// Relations as canonical sorted (lhs, rhs, frame) triples for set equality.
std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> canonical(
    const ImplicationDB& db) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> out;
    for (const Relation& r : db.relations())
        out.emplace_back(lit_key(r.lhs), lit_key(r.rhs), r.frame);
    std::sort(out.begin(), out.end());
    return out;
}

TEST(DbIo, SaveLoadRoundTripIsByteIdentical) {
    for (const std::uint64_t seed : {21ULL, 55ULL}) {
        const Netlist nl = testing::random_circuit(seed, 6, 5, 30);
        const LearnResult learned = testing::learn(nl);
        ASSERT_GT(learned.db.size(), 0u) << "seed " << seed;

        std::ostringstream first;
        save_learned(first, nl, learned.db, learned.ties);

        std::istringstream in(first.str());
        const LoadedLearned loaded = load_learned(in, nl);
        EXPECT_EQ(loaded.skipped_lines, 0u);

        // Loading must reconstruct the exact relation set and tie set...
        EXPECT_EQ(canonical(loaded.db), canonical(learned.db));
        EXPECT_EQ(loaded.db.size(), learned.db.size());
        EXPECT_EQ(loaded.ties.count(), learned.ties.count());
        for (const GateId g : learned.ties.tied_gates()) {
            EXPECT_EQ(loaded.ties.value(g), learned.ties.value(g));
            EXPECT_EQ(loaded.ties.cycle(g), learned.ties.cycle(g));
        }

        // ...and re-saving must reproduce the file byte for byte.
        std::ostringstream second;
        save_learned(second, nl, loaded.db, loaded.ties);
        EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
    }
}

// The binary format stores both directions of every relation; a duplicate
// learned later at an earlier frame must update both stored edges, or the
// two directions disagree and the snapshot's closure check (rightly) balks.
TEST(DbIo, DuplicateFrameUpdateIsSymmetric) {
    ImplicationDB db(4);
    ASSERT_TRUE(db.add({0, Val3::One}, {1, Val3::Zero}, 5));
    // Same relation, re-learned through its contrapositive at an earlier frame.
    ASSERT_FALSE(db.add({1, Val3::One}, {0, Val3::Zero}, 2));
    EXPECT_EQ(db.frame_of({0, Val3::One}, {1, Val3::Zero}), 2u);
    EXPECT_EQ(db.frame_of({1, Val3::One}, {0, Val3::Zero}), 2u);
}

TEST(DbIo, SetEdgesAndSealRestoreOrReject) {
    using Edge = ImplicationDB::Edge;
    {
        // A closed mirror pair restores cleanly and counts one relation.
        ImplicationDB db(4);
        db.set_edges({0, Val3::One}, std::vector<Edge>{{{1, Val3::Zero}, 3}});
        db.set_edges({1, Val3::One}, std::vector<Edge>{{{0, Val3::Zero}, 3}});
        db.seal();
        EXPECT_EQ(db.size(), 1u);
        EXPECT_TRUE(db.implies({0, Val3::One}, {1, Val3::Zero}));
    }
    {
        // A lone direction is not closed under contraposition.
        ImplicationDB db(4);
        db.set_edges({0, Val3::One}, std::vector<Edge>{{{1, Val3::Zero}, 3}});
        EXPECT_THROW(db.seal(), std::invalid_argument);
    }
    {
        // Mirror present but at a different frame: still not closed.
        ImplicationDB db(4);
        db.set_edges({0, Val3::One}, std::vector<Edge>{{{1, Val3::Zero}, 3}});
        db.set_edges({1, Val3::One}, std::vector<Edge>{{{0, Val3::Zero}, 4}});
        EXPECT_THROW(db.seal(), std::invalid_argument);
    }
    {
        // Structural rejects: unsorted targets, self edges, double install.
        ImplicationDB db(4);
        EXPECT_THROW(db.set_edges({0, Val3::One},
                                  std::vector<Edge>{{{2, Val3::Zero}, 0},
                                                    {{1, Val3::Zero}, 0}}),
                     std::invalid_argument);
        EXPECT_THROW(
            db.set_edges({1, Val3::One}, std::vector<Edge>{{{1, Val3::Zero}, 0}}),
            std::invalid_argument);
        db.set_edges({2, Val3::One}, std::vector<Edge>{{{3, Val3::Zero}, 0}});
        EXPECT_THROW(
            db.set_edges({2, Val3::One}, std::vector<Edge>{{{3, Val3::Zero}, 0}}),
            std::invalid_argument);
    }
}

TEST(DbIo, BinarySnapshotRejectsBitFlippedAdjacency) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult learned = testing::learn(nl);
    ASSERT_GT(learned.db.size(), 0u);
    std::ostringstream out;
    save_learned_binary(out, nl, learned.db, learned.ties);
    const std::string good = out.str();
    {
        std::istringstream in(good);
        EXPECT_NO_THROW((void)load_learned_binary(in, nl));
    }
    // Adjacency section: 32-byte header, list/edge counts, then the first
    // list's (key, count) pair at 48 and its first edge at 56 — target key
    // at 56..59, frame at 60..63. Flipping a bit in either desynchronizes
    // the edge from its contrapositive, which the closure check must catch.
    for (const std::size_t corrupt_at : {std::size_t{56}, std::size_t{60}}) {
        std::string bad = good;
        ASSERT_LT(corrupt_at, bad.size());
        bad[corrupt_at] = static_cast<char>(bad[corrupt_at] ^ 1);
        std::istringstream in(bad);
        EXPECT_THROW((void)load_learned_binary(in, nl), std::runtime_error)
            << "byte " << corrupt_at;
    }
}

// The torn-snapshot corpus: a binary v2 blob truncated at EVERY byte
// position (a superset of every section boundary) must produce a structured
// std::runtime_error from the loader — never a crash, never a silent
// partial load — and must fail probe_binary_db's structural walk. Bit flips
// across the checked header fields (magic, version, header size, netlist
// digest, gate count) are rejected the same way, and appended trailing
// garbage fails the probe's exact-tiling requirement.
TEST(DbIoCorpus, TruncationAtEveryByteIsAStructuredErrorNeverAPartialLoad) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    const LearnResult learned = testing::learn(nl);
    ASSERT_GT(learned.db.size(), 0u);
    std::ostringstream out;
    save_learned_binary(out, nl, learned.db, learned.ties);
    const std::string good = out.str();

    const std::optional<BinaryDbInfo> info = probe_binary_db(good);
    ASSERT_TRUE(info.has_value()) << "intact blob must pass the probe";
    EXPECT_EQ(info->gates, nl.size());
    EXPECT_EQ(info->netlist_digest, netlist_digest(nl));
    EXPECT_EQ(info->relations, learned.db.size());
    EXPECT_EQ(info->ties, learned.ties.count());

    for (std::size_t cut = 0; cut < good.size(); ++cut) {
        const std::string torn = good.substr(0, cut);
        EXPECT_FALSE(probe_binary_db(torn).has_value()) << "cut at " << cut;
        std::istringstream in(torn);
        EXPECT_THROW((void)load_learned_binary(in, nl), std::runtime_error)
            << "cut at " << cut;
    }

    // Trailing garbage: the probe demands the sections tile the bytes
    // exactly (a store must not index a blob with unexplained bytes).
    EXPECT_FALSE(probe_binary_db(good + "x").has_value());

    // Header bit flips across every *checked* field. Bytes 28..31 are the
    // reserved word, which loaders deliberately ignore for forward
    // compatibility — excluded here.
    for (std::size_t at = 0; at < 28; ++at) {
        std::string bad = good;
        bad[at] = static_cast<char>(bad[at] ^ 0x10);
        std::istringstream in(bad);
        EXPECT_THROW((void)load_learned_binary(in, nl), std::runtime_error)
            << "header byte " << at;
    }
}

TEST(DbIo, UnknownGateEntriesAreSkippedNotFatal) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::istringstream in(
        "# seqlearn v1 other\n"
        "rel nosuch 1 i0 0 2\n"
        "tie alsomissing 0 1\n"
        "rel i0 1 f0 1 1\n");
    const LoadedLearned loaded = load_learned(in, nl);
    EXPECT_EQ(loaded.skipped_lines, 2u);
    EXPECT_EQ(loaded.db.size(), 1u);
}

TEST(DbIo, MalformedInputThrows) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    for (const char* bad : {"rel i0 1 f0\n", "tie i0 2 0\n", "bogus line here\n"}) {
        std::istringstream in(bad);
        EXPECT_THROW((void)load_learned(in, nl), std::runtime_error) << bad;
    }
}

TEST(DbIo, SessionSaveLoadRoundTrip) {
    const Netlist nl = workload::suite_circuit("rt510a");

    api::Session writer(nl);
    std::ostringstream saved;
    writer.save_db(saved);  // learns on demand
    ASSERT_TRUE(writer.has_learned());
    ASSERT_FALSE(saved.str().empty());

    api::Session reader(nl);
    std::istringstream in(saved.str());
    EXPECT_EQ(reader.load_db(in), 0u);
    ASSERT_TRUE(reader.has_learned());
    EXPECT_EQ(canonical(reader.learn().db), canonical(writer.learn().db));
    EXPECT_EQ(reader.learn().ties.count(), writer.learn().ties.count());

    // A re-save through the facade is byte-identical too.
    std::ostringstream resaved;
    reader.save_db(resaved);
    EXPECT_EQ(saved.str(), resaved.str());

    // Loaded data drives a campaign exactly like freshly learned data.
    atpg::AtpgConfig cfg;
    cfg.mode = atpg::LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 30;
    const auto& from_loaded = reader.atpg(cfg).list.counts();
    const auto& from_learned = writer.atpg(cfg).list.counts();
    EXPECT_EQ(from_loaded.detected, from_learned.detected);
    EXPECT_EQ(from_loaded.untestable, from_learned.untestable);
}

TEST(DbIo, SessionLoadDbBadPathThrows) {
    api::Session session(testing::random_circuit(3, 2, 2, 6));
    EXPECT_THROW(session.load_db("/nonexistent/path/db.learned"), std::runtime_error);
}

TEST(DbIo, SnapshotSaveLoadRoundTrip) {
    // db_io straight onto the shareable LearnedSnapshot: save a frozen
    // snapshot, load it back as a snapshot, byte-identical re-save.
    const Netlist nl = testing::random_circuit(55, 6, 5, 40);
    const LearnedSnapshot original(testing::learn(nl));
    ASSERT_GT(original.db().size(), 0u);

    std::ostringstream first;
    save_learned(first, nl, original);

    std::istringstream in(first.str());
    const LoadedSnapshot loaded = load_snapshot(in, nl);
    EXPECT_EQ(loaded.skipped_lines, 0u);
    ASSERT_NE(loaded.snapshot, nullptr);
    EXPECT_EQ(canonical(loaded.snapshot->db()), canonical(original.db()));
    EXPECT_EQ(loaded.snapshot->ties().count(), original.ties().count());

    std::ostringstream second;
    save_learned(second, nl, *loaded.snapshot);
    EXPECT_EQ(first.str(), second.str());
}

// ---------------------------------------------------------------------------
// Corrupt-file corpus (tests/data/): a single diagnostics pass surfaces every
// problem with its line number, skips the bad lines, and keeps the good ones.

std::ifstream open_corpus(const char* name) {
    std::ifstream in(std::string(SEQLEARN_TEST_DATA_DIR) + "/" + name);
    EXPECT_TRUE(in.is_open()) << name;
    return in;
}

std::vector<std::uint32_t> lines_with(const netlist::Diagnostics& diags,
                                      netlist::Severity sev) {
    std::vector<std::uint32_t> out;
    for (const netlist::Diagnostic& d : diags.records())
        if (d.severity == sev) out.push_back(d.line);
    return out;
}

TEST(DbIoCorpus, MixedCorruptionIsFullyReportedInOnePass) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::ifstream in = open_corpus("corrupt_learned_mixed.txt");
    netlist::Diagnostics diags;
    const LoadedLearned loaded = load_learned(in, nl, diags);

    // Every malformed line is an error at its exact line number; unknown-gate
    // entries are warnings; the scan never stops early.
    EXPECT_EQ(lines_with(diags, netlist::Severity::Error),
              (std::vector<std::uint32_t>{3, 4, 5, 8, 9, 10}));
    EXPECT_EQ(lines_with(diags, netlist::Severity::Warning),
              (std::vector<std::uint32_t>{6, 11}));
    EXPECT_EQ(loaded.skipped_lines, 2u);

    // The well-formed, known-gate entries survive.
    EXPECT_EQ(loaded.db.size(), 1u);
    const GateId f0 = nl.find("f0");
    ASSERT_NE(f0, netlist::kNoGate);
    EXPECT_TRUE(loaded.ties.is_tied(f0));
}

TEST(DbIoCorpus, LegacyWrapperThrowsTheFirstErrorWithItsLine) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::ifstream in = open_corpus("corrupt_learned_mixed.txt");
    try {
        (void)load_learned(in, nl);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bad literal value"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    }
}

TEST(DbIoCorpus, CheckpointWithoutCursorIsNotResumable) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::ifstream in = open_corpus("corrupt_checkpoint_no_cursor.txt");
    netlist::Diagnostics diags;
    const LearnCheckpoint ckpt = load_checkpoint(in, nl, diags);
    EXPECT_FALSE(diags.ok());
    EXPECT_EQ(diags.error_count(), 1u);
    EXPECT_NE(diags.records()[0].message.find("missing cursor"), std::string::npos);
    EXPECT_FALSE(ckpt.cursor.valid);
}

TEST(DbIoCorpus, CheckpointVersionMismatchIsRejected) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::ifstream in = open_corpus("corrupt_checkpoint_bad_version.txt");
    netlist::Diagnostics diags;
    const LearnCheckpoint ckpt = load_checkpoint(in, nl, diags);
    EXPECT_FALSE(diags.ok());
    EXPECT_FALSE(ckpt.cursor.valid);
    bool version_reported = false;
    for (const netlist::Diagnostic& d : diags.records())
        version_reported =
            version_reported || d.message.find("version") != std::string::npos;
    EXPECT_TRUE(version_reported);
}

TEST(DbIoCorpus, CheckpointForeignGatesAreErrorsNotSkips) {
    // For a plain learned DB unknown gates are warnings (mild netlist edits
    // keep a database usable); for a checkpoint they mean the file belongs to
    // a different circuit, and resuming must be refused.
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::ifstream in = open_corpus("corrupt_checkpoint_foreign_gates.txt");
    netlist::Diagnostics diags;
    const LearnCheckpoint ckpt = load_checkpoint(in, nl, diags);
    EXPECT_EQ(lines_with(diags, netlist::Severity::Error),
              (std::vector<std::uint32_t>{5, 7}));
    EXPECT_EQ(diags.warning_count(), 0u);
    EXPECT_FALSE(ckpt.cursor.valid);
}

TEST(DbIoCorpus, StrictNumericParsingRejectsTrailingGarbage) {
    // The pre-governance loader used std::stoul, which turned "12x" into 12.
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::istringstream in("rel i0 1 f0 1 12x\n");
    netlist::Diagnostics diags;
    const LoadedLearned loaded = load_learned(in, nl, diags);
    EXPECT_EQ(loaded.db.size(), 0u);
    ASSERT_EQ(diags.error_count(), 1u);
    EXPECT_NE(diags.records()[0].message.find("'12x'"), std::string::npos);
}

TEST(DbIoCorpus, CheckpointRoundTripPreservesEveryField) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    core::LearnConfig cfg;
    cfg.threads = 1;
    cfg.budget.max_items = 9;
    const LearnResult partial = testing::learn(nl, cfg);
    ASSERT_TRUE(partial.cursor.valid);
    const LearnCheckpoint ckpt = make_checkpoint(nl, partial);

    std::stringstream ss;
    save_checkpoint(ss, nl, ckpt);
    netlist::Diagnostics diags;
    const LearnCheckpoint loaded = load_checkpoint(ss, nl, diags);
    EXPECT_TRUE(diags.ok()) << diags.to_string("checkpoint");

    EXPECT_EQ(loaded.circuit, nl.name());
    EXPECT_EQ(loaded.cursor.class_index, ckpt.cursor.class_index);
    EXPECT_EQ(loaded.cursor.in_multi, ckpt.cursor.in_multi);
    EXPECT_EQ(loaded.cursor.unit, ckpt.cursor.unit);
    EXPECT_EQ(loaded.cursor.config_digest, ckpt.cursor.config_digest);
    EXPECT_EQ(loaded.stems_processed, ckpt.stems_processed);
    EXPECT_EQ(loaded.multi_targets, ckpt.multi_targets);
    EXPECT_EQ(loaded.multi_relations, ckpt.multi_relations);
    EXPECT_EQ(loaded.multi_ties, ckpt.multi_ties);
    EXPECT_EQ(canonical(loaded.db), canonical(ckpt.db));
    EXPECT_EQ(loaded.ties.count(), ckpt.ties.count());
    EXPECT_EQ(loaded.records.cap(), ckpt.records.cap());
    EXPECT_EQ(loaded.records.total_records(), ckpt.records.total_records());
    // Per-key record vectors byte-identical (order matters for the resumed
    // multiple-node pass).
    for (const Literal key : ckpt.records.targets(1)) {
        const auto want = ckpt.records.records_for(key);
        const auto got = loaded.records.records_for(key);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].stem.gate, want[i].stem.gate);
            EXPECT_EQ(got[i].stem.value, want[i].stem.value);
            EXPECT_EQ(got[i].offset, want[i].offset);
        }
    }

    // A re-save of the loaded checkpoint is byte-identical.
    std::stringstream again;
    save_checkpoint(again, nl, loaded);
    EXPECT_EQ(ss.str(), again.str());
}

}  // namespace
}  // namespace seqlearn::core
