// Round-trip tests for the learned-data persistence format (core::db_io)
// and its Session-level entry points (save_db / load_db).

#include "api/session.hpp"
#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "test_helpers.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace seqlearn::core {
namespace {

using netlist::GateId;
using netlist::Netlist;

// Relations as canonical sorted (lhs, rhs, frame) triples for set equality.
std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> canonical(
    const ImplicationDB& db) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> out;
    for (const Relation& r : db.relations())
        out.emplace_back(lit_key(r.lhs), lit_key(r.rhs), r.frame);
    std::sort(out.begin(), out.end());
    return out;
}

TEST(DbIo, SaveLoadRoundTripIsByteIdentical) {
    for (const std::uint64_t seed : {21ULL, 55ULL}) {
        const Netlist nl = testing::random_circuit(seed, 6, 5, 30);
        const LearnResult learned = testing::learn(nl);
        ASSERT_GT(learned.db.size(), 0u) << "seed " << seed;

        std::ostringstream first;
        save_learned(first, nl, learned.db, learned.ties);

        std::istringstream in(first.str());
        const LoadedLearned loaded = load_learned(in, nl);
        EXPECT_EQ(loaded.skipped_lines, 0u);

        // Loading must reconstruct the exact relation set and tie set...
        EXPECT_EQ(canonical(loaded.db), canonical(learned.db));
        EXPECT_EQ(loaded.db.size(), learned.db.size());
        EXPECT_EQ(loaded.ties.count(), learned.ties.count());
        for (const GateId g : learned.ties.tied_gates()) {
            EXPECT_EQ(loaded.ties.value(g), learned.ties.value(g));
            EXPECT_EQ(loaded.ties.cycle(g), learned.ties.cycle(g));
        }

        // ...and re-saving must reproduce the file byte for byte.
        std::ostringstream second;
        save_learned(second, nl, loaded.db, loaded.ties);
        EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
    }
}

TEST(DbIo, UnknownGateEntriesAreSkippedNotFatal) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    std::istringstream in(
        "# seqlearn v1 other\n"
        "rel nosuch 1 i0 0 2\n"
        "tie alsomissing 0 1\n"
        "rel i0 1 f0 1 1\n");
    const LoadedLearned loaded = load_learned(in, nl);
    EXPECT_EQ(loaded.skipped_lines, 2u);
    EXPECT_EQ(loaded.db.size(), 1u);
}

TEST(DbIo, MalformedInputThrows) {
    const Netlist nl = testing::random_circuit(21, 6, 5, 30);
    for (const char* bad : {"rel i0 1 f0\n", "tie i0 2 0\n", "bogus line here\n"}) {
        std::istringstream in(bad);
        EXPECT_THROW((void)load_learned(in, nl), std::runtime_error) << bad;
    }
}

TEST(DbIo, SessionSaveLoadRoundTrip) {
    const Netlist nl = workload::suite_circuit("rt510a");

    api::Session writer(nl);
    std::ostringstream saved;
    writer.save_db(saved);  // learns on demand
    ASSERT_TRUE(writer.has_learned());
    ASSERT_FALSE(saved.str().empty());

    api::Session reader(nl);
    std::istringstream in(saved.str());
    EXPECT_EQ(reader.load_db(in), 0u);
    ASSERT_TRUE(reader.has_learned());
    EXPECT_EQ(canonical(reader.learn().db), canonical(writer.learn().db));
    EXPECT_EQ(reader.learn().ties.count(), writer.learn().ties.count());

    // A re-save through the facade is byte-identical too.
    std::ostringstream resaved;
    reader.save_db(resaved);
    EXPECT_EQ(saved.str(), resaved.str());

    // Loaded data drives a campaign exactly like freshly learned data.
    atpg::AtpgConfig cfg;
    cfg.mode = atpg::LearnMode::ForbiddenValue;
    cfg.backtrack_limit = 30;
    const auto& from_loaded = reader.atpg(cfg).list.counts();
    const auto& from_learned = writer.atpg(cfg).list.counts();
    EXPECT_EQ(from_loaded.detected, from_learned.detected);
    EXPECT_EQ(from_loaded.untestable, from_learned.untestable);
}

TEST(DbIo, SessionLoadDbBadPathThrows) {
    api::Session session(testing::random_circuit(3, 2, 2, 6));
    EXPECT_THROW(session.load_db("/nonexistent/path/db.learned"), std::runtime_error);
}

TEST(DbIo, SnapshotSaveLoadRoundTrip) {
    // db_io straight onto the shareable LearnedSnapshot: save a frozen
    // snapshot, load it back as a snapshot, byte-identical re-save.
    const Netlist nl = testing::random_circuit(55, 6, 5, 40);
    const LearnedSnapshot original(testing::learn(nl));
    ASSERT_GT(original.db().size(), 0u);

    std::ostringstream first;
    save_learned(first, nl, original);

    std::istringstream in(first.str());
    const LoadedSnapshot loaded = load_snapshot(in, nl);
    EXPECT_EQ(loaded.skipped_lines, 0u);
    ASSERT_NE(loaded.snapshot, nullptr);
    EXPECT_EQ(canonical(loaded.snapshot->db()), canonical(original.db()));
    EXPECT_EQ(loaded.snapshot->ties().count(), original.ties().count());

    std::ostringstream second;
    save_learned(second, nl, *loaded.snapshot);
    EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace seqlearn::core
