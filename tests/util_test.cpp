// Unit tests for util: deterministic RNG and string helpers.

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace seqlearn::util {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(7);
    const auto x0 = a.next_u64();
    const auto x1 = a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), x0);
    EXPECT_EQ(a.next_u64(), x1);
}

TEST(Rng, BelowStaysInBounds) {
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeCoversEndpoints) {
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceRoughlyCalibrated) {
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\t\nabc"), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitDropsEmptyAndTrims) {
    const auto parts = split("a, b ,, c", ",");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleSeparators) {
    const auto parts = split("a b\tc", " \t");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptyInput) {
    EXPECT_TRUE(split("", ",").empty());
    EXPECT_TRUE(split(" , , ", ",").empty());
}

TEST(Strings, CaseHelpers) {
    EXPECT_EQ(to_upper("NaNd"), "NAND");
    EXPECT_TRUE(iequals("DFF", "dff"));
    EXPECT_FALSE(iequals("DFF", "df"));
    EXPECT_TRUE(starts_with("OUTPUT(x)", "OUTPUT"));
    EXPECT_FALSE(starts_with("OUT", "OUTPUT"));
}

TEST(Strings, Format) {
    EXPECT_EQ(format("%s=%d", "x", 42), "x=42");
    EXPECT_EQ(format("%.2f", 1.005), "1.00");
    EXPECT_EQ(format("no args"), "no args");
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
    Timer t;
    const double a = t.seconds();
    const double b = t.seconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
    t.reset();
    EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace seqlearn::util
