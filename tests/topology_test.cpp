// Tests for the CSR topology snapshot: adjacency equivalence against the
// Netlist's per-gate lists, the comb/seq fanout partition, cached codes, and
// the zero-allocation run_into() contract of the frame simulator.

#include "netlist/levelize.hpp"
#include "netlist/structure.hpp"
#include "netlist/topology.hpp"
#include "sim/frame_sim.hpp"
#include "test_helpers.hpp"
#include "workload/paper_circuits.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace seqlearn::netlist {
namespace {

using sim::FrameSimOptions;
using sim::FrameSimResult;
using sim::FrameSimulator;
using sim::Injection;
using sim::SeqGating;

// The CSR view must agree with the Netlist edge-for-edge: fanins in
// identical order, and fanouts as a *stable partition* (combinational sinks
// first, sequential sinks last, each in Netlist order) — the frame
// simulator's discovery order depends on it.
void expect_adjacency_equivalent(const Netlist& nl) {
    const Topology topo(nl);
    const Levelization lv = levelize(nl);
    ASSERT_EQ(topo.size(), nl.size());
    for (GateId g = 0; g < nl.size(); ++g) {
        const auto nf = nl.fanins(g);
        const auto tf = topo.fanins(g);
        ASSERT_TRUE(std::equal(nf.begin(), nf.end(), tf.begin(), tf.end()))
            << "fanins differ at gate " << nl.name_of(g);

        std::vector<GateId> comb, seq;
        for (const GateId fo : nl.fanouts(g)) {
            (is_sequential(nl.type(fo)) ? seq : comb).push_back(fo);
        }
        const auto tc = topo.comb_fanouts(g);
        const auto ts = topo.seq_fanouts(g);
        ASSERT_TRUE(std::equal(comb.begin(), comb.end(), tc.begin(), tc.end()))
            << "comb fanouts differ at gate " << nl.name_of(g);
        ASSERT_TRUE(std::equal(seq.begin(), seq.end(), ts.begin(), ts.end()))
            << "seq fanouts differ at gate " << nl.name_of(g);
        ASSERT_EQ(topo.fanout_count(g), nl.fanouts(g).size());
        ASSERT_EQ(topo.fanouts(g).size(), comb.size() + seq.size());

        EXPECT_EQ(topo.type(g), nl.type(g));
        EXPECT_EQ(topo.is_seq(g), is_sequential(nl.type(g)));
        EXPECT_EQ(topo.is_input(g), nl.type(g) == GateType::Input);
        const bool is_const =
            nl.type(g) == GateType::Const0 || nl.type(g) == GateType::Const1;
        EXPECT_EQ(topo.is_const(g), is_const);
        if (topo.is_comb(g) || is_const) EXPECT_EQ(topo.op(g), to_op(nl.type(g)));
        EXPECT_EQ(topo.level(g), lv.level[g]);

        // Flat fanin-edge numbering: pin i of g is edge fanin_offset(g) + i.
        EXPECT_EQ(topo.fanins(g).data(), topo.fanins(0).data() + topo.fanin_offset(g));
    }
    EXPECT_EQ(topo.fanin_offset(0), 0u);

    // The interface lists mirror the Netlist's exactly, in the same order.
    const auto expect_list_equal = [](std::span<const GateId> a,
                                      std::span<const GateId> b) {
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    };
    expect_list_equal(topo.inputs(), nl.inputs());
    expect_list_equal(topo.outputs(), nl.outputs());
    expect_list_equal(topo.seq_elements(), nl.seq_elements());
    std::size_t edges = 0;
    for (GateId g = 0; g < nl.size(); ++g) edges += nl.fanins(g).size();
    EXPECT_EQ(topo.num_fanin_edges(), edges);

    // The CSR-walking sequential_depth agrees with the Netlist walker.
    for (const std::size_t cap : {4u, 16u, 64u})
        EXPECT_EQ(sequential_depth(topo, cap), sequential_depth(nl, cap));
    EXPECT_EQ(topo.max_level(), lv.max_level);
    const auto sched = topo.schedule();
    ASSERT_TRUE(std::equal(lv.topo_order.begin(), lv.topo_order.end(), sched.begin(),
                           sched.end()));
    for (const GateId c : topo.const_gates()) EXPECT_TRUE(topo.is_const(c));
}

TEST(Topology, MatchesNetlistOnPaperCircuits) {
    expect_adjacency_equivalent(workload::fig1_analog());
    expect_adjacency_equivalent(workload::fig2_analog());
}

TEST(Topology, MatchesNetlistOnRandomCircuits) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 21ULL, 42ULL, 99ULL, 1234ULL}) {
        expect_adjacency_equivalent(testing::random_circuit(seed, 6, 5, 40));
    }
    // Larger shape: more fanout sharing, deeper logic.
    expect_adjacency_equivalent(testing::random_circuit(5, 10, 12, 150));
}

TEST(FrameSimulator, RunIntoMatchesRunAndReusesBuffers) {
    const Netlist nl = testing::random_circuit(17, 6, 6, 60);
    FrameSimulator fsim(nl, SeqGating::all_open(nl));
    FrameSimOptions opt;
    FrameSimResult reused;
    const auto stems = nl.stems();
    ASSERT_FALSE(stems.empty());

    // Same results through both entry points, for both injection values.
    for (const GateId stem : stems) {
        for (const logic::Val3 v : {logic::Val3::Zero, logic::Val3::One}) {
            const Injection inj{0, stem, v};
            const FrameSimResult fresh = fsim.run({&inj, 1}, opt);
            fsim.run_into({&inj, 1}, opt, reused);
            ASSERT_EQ(fresh.conflict, reused.conflict);
            ASSERT_EQ(fresh.frames_run, reused.frames_run);
            ASSERT_EQ(fresh.stopped_on_repeat, reused.stopped_on_repeat);
            ASSERT_EQ(fresh.implied.size(), reused.implied.size());
            for (std::size_t i = 0; i < fresh.implied.size(); ++i) {
                ASSERT_EQ(fresh.implied[i].gate, reused.implied[i].gate);
                ASSERT_EQ(fresh.implied[i].frame, reused.implied[i].frame);
                ASSERT_EQ(fresh.implied[i].value, reused.implied[i].value);
            }
        }
    }

    // Steady state: re-running the same scenario must not reallocate the
    // reused result's implied storage.
    const Injection inj{0, stems[0], logic::Val3::One};
    fsim.run_into({&inj, 1}, opt, reused);
    const auto* data = reused.implied.data();
    const auto cap = reused.implied.capacity();
    for (int i = 0; i < 10; ++i) fsim.run_into({&inj, 1}, opt, reused);
    EXPECT_EQ(reused.implied.data(), data);
    EXPECT_EQ(reused.implied.capacity(), cap);
}

TEST(FrameSimulator, SharedTopologyMatchesOwned) {
    const Netlist nl = testing::random_circuit(23, 5, 4, 50);
    const Topology topo(nl);
    FrameSimulator owned(nl, SeqGating::all_open(nl));
    FrameSimulator shared(topo, SeqGating::all_open(nl));
    FrameSimOptions opt;
    FrameSimResult a, b;
    for (const GateId stem : nl.stems()) {
        const Injection inj{0, stem, logic::Val3::One};
        owned.run_into({&inj, 1}, opt, a);
        shared.run_into({&inj, 1}, opt, b);
        ASSERT_EQ(a.implied.size(), b.implied.size());
        for (std::size_t i = 0; i < a.implied.size(); ++i) {
            ASSERT_EQ(a.implied[i].gate, b.implied[i].gate);
            ASSERT_EQ(a.implied[i].value, b.implied[i].value);
        }
    }
}

}  // namespace
}  // namespace seqlearn::netlist
