// Focused tests for the learning-mode machinery: tie-aware fault
// simulation, forbidden-value propagation inside the engine, frame-tagged
// relation application, and the complete-search redundancy prover.

#include "api/session.hpp"
#include "atpg/atpg_loop.hpp"
#include "atpg/engine.hpp"
#include "atpg/redundancy.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/builder.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace seqlearn::atpg {
namespace {

using fault::Fault;
using fault::kOutputPin;
using logic::Val3;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;

// The tie-vs-validation circuit from the ATPG debugging session: g is
// combinationally tied to 0, and several faults are detectable only when
// the expected-value model knows it.
Netlist tie_circuit() {
    NetlistBuilder b("tiec");
    b.input("a").input("c");
    b.gate(GateType::Not, "na", {"a"});
    b.gate(GateType::And, "g", {"a", "na"});
    b.gate(GateType::Or, "y", {"g", "c"});
    b.dff("f", "y");
    b.gate(GateType::And, "z", {"f", "c"});
    b.output("z");
    return b.build();
}

TEST(TieAwareFaultSim, GoodLaneGainsTieValues) {
    const Netlist nl = tie_circuit();
    const core::LearnResult learned = testing::learn(nl);
    ASSERT_EQ(learned.ties.value(nl.find("g")), Val3::Zero);

    // c s-a-1 with frames (c=0),(c=X): plain 3-valued good simulation leaves
    // the PO unknown (y@0 = OR(X,0) = X), so detection needs the tie. Both
    // simulators share one CSR snapshot (the Session pattern).
    const Fault f{nl.find("c"), kOutputPin, Val3::One};
    const sim::InputSequence seq{{Val3::X, Val3::Zero}, {Val3::X, Val3::X}};
    const netlist::Topology topo(nl);
    fault::FaultSimulator plain(topo);
    EXPECT_FALSE(plain.detects(seq, f));
    fault::FaultSimulator aware(topo);
    aware.set_good_ties(&learned.ties.dense(), &learned.ties.dense_cycles());
    EXPECT_TRUE(aware.detects(seq, f));
}

TEST(TieAwareFaultSim, FaultyLaneInsideConeStaysUnseeded) {
    // A fault on the tied gate itself must not have the tie forced into its
    // faulty lane: g s-a-1 is exactly the broken tie and stays detectable.
    const Netlist nl = tie_circuit();
    const core::LearnResult learned = testing::learn(nl);
    const netlist::Topology topo(nl);
    fault::FaultSimulator aware(topo);
    aware.set_good_ties(&learned.ties.dense(), &learned.ties.dense_cycles());
    const Fault g1{nl.find("g"), kOutputPin, Val3::One};
    // Frame 0 (c=0): good y = OR(g_tie=0, 0) = 0 so f captures 0; faulty
    // y = OR(1, 0) = 1 so f captures 1. Frame 1 (c=1) exposes f at z.
    const sim::InputSequence seq{{Val3::X, Val3::Zero}, {Val3::X, Val3::One}};
    EXPECT_TRUE(aware.detects(seq, g1));
    // Without tie knowledge the good simulation stays X at the output —
    // this is exactly the pessimism gap the tie-aware model closes.
    fault::FaultSimulator plain(topo);
    EXPECT_FALSE(plain.detects(seq, g1));
}

TEST(TieAwareFaultSim, NeverContradictsPlainSimulation) {
    // Tie seeding may only refine X values, never flip binary ones: any
    // fault detected by the plain simulator stays detected by the aware one.
    for (const std::uint64_t seed : {3ULL, 14ULL, 59ULL}) {
        const Netlist nl = testing::random_circuit(seed, 3, 4, 14);
        const core::LearnResult learned = testing::learn(nl);
        const netlist::Topology topo(nl);
        fault::FaultSimulator plain(topo);
        fault::FaultSimulator aware(topo);
        aware.set_good_ties(&learned.ties.dense(), &learned.ties.dense_cycles());
        util::Rng rng(seed);
        const auto universe = fault::fault_universe(nl);
        for (int trial = 0; trial < 3; ++trial) {
            sim::InputSequence seq(6, sim::InputFrame(nl.inputs().size()));
            for (auto& fr : seq)
                for (auto& v : fr) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
            for (const Fault& f : universe) {
                if (plain.detects(seq, f)) {
                    EXPECT_TRUE(aware.detects(seq, f))
                        << "seed " << seed << " " << to_string(nl, f);
                }
            }
        }
    }
}

TEST(ForbiddenMode, ForbidPruningDetectsConflictEarly) {
    // F1=1 => F2=1 learned; a fault whose detection requires F1=1 and F2=0
    // in the same frame is hopeless — forbidden mode must refuse instead of
    // burning backtracks.
    NetlistBuilder b("forb");
    b.input("a").input("c");
    b.gate(GateType::Or, "d2", {"a", "c"});
    b.dff("F1", "a");
    b.dff("F2", "d2");
    b.gate(GateType::Not, "nF2", {"F2"});
    b.gate(GateType::And, "bad", {"F1", "nF2"});  // == invalid-state decode
    b.gate(GateType::Or, "y", {"bad", "c"});
    b.output("y");
    const Netlist nl = b.build();
    const core::LearnResult learned = testing::learn(nl);
    ASSERT_TRUE(
        learned.db.implies({nl.find("F1"), Val3::One}, {nl.find("F2"), Val3::One}));

    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig cfg;
    cfg.backtrack_limit = 10000;
    // bad s-a-0: excitation needs bad=1, i.e. the invalid state F1=1,F2=0.
    const Fault f{nl.find("bad"), kOutputPin, Val3::Zero};
    const EngineResult none = engine.solve(f, 4, cfg);
    cfg.mode = LearnMode::ForbiddenValue;
    cfg.db = &learned.db;
    cfg.ties = &learned.ties;
    const EngineResult forb = engine.solve(f, 4, cfg);
    // Both must fail to find a test (it does not exist); learning must not
    // cost more backtracks than no-learning.
    EXPECT_NE(none.status, EngineResult::Status::TestFound);
    EXPECT_NE(forb.status, EngineResult::Status::TestFound);
    EXPECT_LE(forb.backtracks, none.backtracks);
}

TEST(KnownMode, ImpliedAssignmentsAreJustifiedInTests) {
    // Known-value mode creates justification obligations for implied
    // literals; the end-to-end result must still validate.
    api::Session session(testing::random_circuit(31, 3, 5, 16));
    AtpgConfig cfg;
    cfg.mode = LearnMode::KnownValue;  // Session wires in its learn() result
    cfg.backtrack_limit = 200;
    const api::AtpgReport& report = session.atpg(cfg);
    EXPECT_EQ(report.outcome.invalid_tests, 0u);
}

TEST(FrameTags, RelationsNotAppliedBeforeTheirFrame) {
    // A relation learned at frame 1 must not fire at ILA frame 0 (the state
    // there is arbitrary). Construct: F1=1 => F2=1 @1; at frame 0 both are
    // unknown and a known-value application would wrongly bind them.
    NetlistBuilder b("tags");
    b.input("a");
    b.dff("F1", "a");
    b.dff("F2", "a");
    b.gate(GateType::Xor, "y", {"F1", "F2"});  // 0 in every *valid* state
    b.output("y");
    const Netlist nl = b.build();
    const core::LearnResult learned = testing::learn(nl);
    const core::Literal f1{nl.find("F1"), Val3::One};
    const core::Literal f2{nl.find("F2"), Val3::One};
    ASSERT_TRUE(learned.db.implies(f1, f2));
    ASSERT_GE(learned.db.frame_of(f1, f2), 1u);
    // y s-a-0 is untestable in valid states; a power-up state with F1 != F2
    // exists but is unreachable and the engine cannot control frame-0 state,
    // so the campaign must not report a test. The point: with frame tags
    // respected this is *proven* consistently across modes, with no invalid
    // tests generated at frame 0.
    const netlist::Topology topo(nl);
    for (const LearnMode mode : {LearnMode::None, LearnMode::KnownValue,
                                 LearnMode::ForbiddenValue}) {
        fault::FaultList list(
            std::vector<Fault>{Fault{nl.find("y"), kOutputPin, Val3::Zero}});
        AtpgConfig cfg;
        cfg.mode = mode;
        cfg.learned = mode == LearnMode::None ? nullptr : &learned;
        cfg.backtrack_limit = 1000;
        const AtpgOutcome out = run_atpg(topo, list, cfg);
        EXPECT_EQ(out.invalid_tests, 0u);
        EXPECT_NE(list.status(0), fault::FaultStatus::Detected);
    }
}

TEST(CompleteSearch, ProverAgreesWithExhaustiveOracleOnTinyCircuits) {
    for (const std::uint64_t seed : {4ULL, 23ULL, 37ULL}) {
        const Netlist nl = testing::random_circuit(seed, 2, 3, 9);
        const netlist::Topology topo(nl);
        Engine engine(topo);
        fault::FaultSimulator fsim(topo);
        const auto universe = fault::fault_universe(nl);
        for (const Fault& f : universe) {
            const RedundancyResult v = prove_redundancy(engine, f, {}, 1u << 20);
            if (v.proof != fault::UntestableProof::Combinational) continue;
            // Exhaustive cross-check over all sequences up to 4 frames.
            bool detectable = false;
            const std::size_t m = nl.inputs().size();
            for (std::size_t len = 1; len <= 4 && !detectable; ++len) {
                for (std::uint64_t bits = 0; bits < (1ULL << (m * len)); ++bits) {
                    sim::InputSequence seq(len, sim::InputFrame(m, Val3::X));
                    for (std::size_t t = 0; t < len; ++t)
                        for (std::size_t i = 0; i < m; ++i)
                            seq[t][i] = (bits >> (t * m + i)) & 1 ? Val3::One : Val3::Zero;
                    if (fsim.detects(seq, f)) detectable = true;
                }
            }
            EXPECT_FALSE(detectable) << "seed " << seed << ": " << to_string(nl, f);
        }
    }
}

TEST(CompleteSearch, FindsTestsThatFrontierSearchMisses) {
    // The exhaustive fallback must at least match the frontier search on
    // single-frame problems: everything the frontier engine detects, the
    // complete prover also reaches (as CombinationallyTestable).
    const Netlist nl = testing::random_circuit(8, 3, 0, 12);
    const netlist::Topology topo(nl);
    Engine engine(topo);
    EngineConfig frontier_cfg;
    frontier_cfg.backtrack_limit = 1000;
    const fault::CollapsedFaults collapsed = fault::collapse(nl);
    for (const Fault& f : collapsed.representatives()) {
        const EngineResult r = engine.solve(f, 1, frontier_cfg);
        if (r.status != EngineResult::Status::TestFound) continue;
        EXPECT_TRUE(prove_redundancy(engine, f, {}, 1u << 20).combinationally_testable)
            << to_string(nl, f);
    }
}

}  // namespace
}  // namespace seqlearn::atpg
