// Wall-clock governance on a real workload (gen5378, the paper's s5378
// stand-in): a deadline-bounded learn() must stop promptly and return a
// usable partial result, and a budgeted run plus a checkpointed resume must
// reproduce the one-shot goldens bit-identically at every thread count and
// batch width. Kept out of the TSan job: gen5378 is too large to simulate
// under TSan's slowdown (the small-circuit robustness_test covers the same
// code paths there).

#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "netlist/topology.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <tuple>
#include <vector>

namespace seqlearn::core {
namespace {

// relation_hash comes from the library (core/impl_db.hpp) so these
// robustness/governance digests stay pinned to the serving protocol's.

TEST(Governance, DeadlineStopsPromptlyWithUsablePartialResult) {
    const netlist::Netlist nl = workload::suite_circuit("gen5378");
    const netlist::Topology topo(nl);

    // A full serial pass takes ~1s in Release; 100ms cuts it off mid-stream.
    LearnConfig cfg;
    cfg.threads = 1;
    cfg.batch_lanes = 0;
    cfg.budget.deadline = std::chrono::milliseconds(100);

    const auto t0 = std::chrono::steady_clock::now();
    const LearnResult r = learn(nl, topo, cfg);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);

    ASSERT_EQ(r.outcome.status, exec::RunStatus::DeadlineExceeded)
        << "elapsed " << elapsed.count() << "ms — full pass finished under the "
        << "deadline? rebalance the test budget";
    EXPECT_EQ(r.outcome.diagnostic, "wall-clock deadline");
    // The acceptance bound: stop within 50ms of the deadline. Polling happens
    // at stem boundaries, so the tolerance is one work item plus scheduling
    // noise; debug/instrumented builds get a generous allowance.
#ifdef NDEBUG
    constexpr long kToleranceMs = 50;
#else
    constexpr long kToleranceMs = 1000;
#endif
    EXPECT_LE(elapsed.count(), 100 + kToleranceMs);

    // The partial result is usable: a sound prefix with a resume cursor,
    // flagged for report printers.
    EXPECT_TRUE(r.cursor.valid);
    EXPECT_TRUE(r.stats.cancelled);
    EXPECT_GT(r.stats.stems_processed, 0u);
    EXPECT_LT(r.stats.stems_processed, r.stats.stems);
}

TEST(Governance, BudgetedRunPlusResumeMatchesOneShotAcrossExecConfigs) {
    const netlist::Netlist nl = workload::suite_circuit("gen5378");
    const netlist::Topology topo(nl);

    LearnConfig serial;
    serial.threads = 1;
    serial.batch_lanes = 0;
    const LearnResult golden = learn(nl, topo, serial);
    ASSERT_TRUE(golden.outcome.ok());

    // Stop partway through the single-node pass, checkpoint, resume under
    // each execution config; every combined run must land on the goldens.
    LearnConfig budgeted = serial;
    budgeted.budget.max_items = 300;
    const LearnResult partial = learn(nl, topo, budgeted);
    ASSERT_EQ(partial.outcome.status, exec::RunStatus::LimitReached);
    ASSERT_TRUE(partial.cursor.valid);
    EXPECT_FALSE(partial.cursor.in_multi);
    EXPECT_EQ(partial.cursor.unit, 300u);  // items = stems observed, in order
    // Some of those stems are skipped (already tied / constant), so the
    // processed count is at most the item count.
    EXPECT_LE(partial.stats.stems_processed, 300u);
    EXPECT_GT(partial.stats.stems_processed, 0u);
    const LearnCheckpoint ckpt = make_checkpoint(nl, partial);

    // One cell exercises the full text round trip; the rest resume from the
    // in-memory checkpoint (the serialization is identical — db_io_test
    // proves field fidelity, this proves result fidelity at scale).
    std::stringstream ss;
    save_checkpoint(ss, nl, ckpt);
    const LearnCheckpoint reloaded = load_checkpoint(ss, nl);

    bool first = true;
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const std::size_t lanes : {std::size_t{0}, std::size_t{64}}) {
            LearnConfig cfg;
            cfg.threads = threads;
            cfg.batch_lanes = lanes;
            const LearnResult resumed =
                resume_learn(nl, topo, cfg, first ? reloaded : ckpt);
            first = false;
            const std::string ctx =
                "threads=" + std::to_string(threads) + " lanes=" + std::to_string(lanes);
            EXPECT_TRUE(resumed.outcome.ok()) << ctx;
            EXPECT_EQ(relation_hash(resumed.db), relation_hash(golden.db)) << ctx;
            EXPECT_EQ(resumed.db.size(), golden.db.size()) << ctx;
            EXPECT_EQ(resumed.ties.dense(), golden.ties.dense()) << ctx;
            EXPECT_EQ(resumed.ties.dense_cycles(), golden.ties.dense_cycles()) << ctx;
            EXPECT_EQ(resumed.stats.multi_relations, golden.stats.multi_relations) << ctx;
            EXPECT_EQ(resumed.stats.multi_ties, golden.stats.multi_ties) << ctx;
            EXPECT_EQ(resumed.stats.stems_processed, golden.stats.stems_processed) << ctx;
        }
    }
}

}  // namespace
}  // namespace seqlearn::core
