// Tests for the exec subsystem: pool scheduling (every item exactly once,
// worker ids in range, caller participation, caps, exceptions), the cancel
// flag, and the ordered-speculation driver's bit-identical replay of a
// serial schedule with rare state mutations.

#include "exec/cancel.hpp"
#include "exec/pool.hpp"
#include "exec/speculate.hpp"
#include "exec/worker_set.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace seqlearn::exec {
namespace {

TEST(Pool, RunsEveryItemExactlyOnce) {
    for (const unsigned threads : {1u, 2u, 8u}) {
        Pool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        constexpr std::size_t kItems = 10000;
        std::vector<std::atomic<int>> hits(kItems);
        std::atomic<bool> bad_worker{false};
        auto task = [&](unsigned worker, std::size_t item) {
            if (worker >= pool.size()) bad_worker = true;
            hits[item].fetch_add(1, std::memory_order_relaxed);
        };
        pool.run(kItems, TaskView(task));
        EXPECT_FALSE(bad_worker);
        for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(Pool, ReusableAcrossManyRuns) {
    Pool pool(4);
    std::atomic<std::size_t> total{0};
    auto task = [&](unsigned, std::size_t) { total.fetch_add(1); };
    for (int round = 0; round < 100; ++round) pool.run(17, TaskView(task));
    EXPECT_EQ(total.load(), 1700u);
}

TEST(Pool, MaxWorkersCapsParticipation) {
    Pool pool(8);
    std::atomic<unsigned> max_seen{0};
    auto task = [&](unsigned worker, std::size_t) {
        unsigned cur = max_seen.load();
        while (worker > cur && !max_seen.compare_exchange_weak(cur, worker)) {
        }
        std::this_thread::yield();
    };
    pool.run(500, TaskView(task), /*max_workers=*/2);
    EXPECT_LT(max_seen.load(), 2u);
}

TEST(Pool, SingleItemRunsInlineOnCaller) {
    Pool pool(8);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    unsigned seen_worker = 99;
    auto task = [&](unsigned worker, std::size_t) {
        seen = std::this_thread::get_id();
        seen_worker = worker;
    };
    pool.run(1, TaskView(task));
    EXPECT_EQ(seen, caller);
    EXPECT_EQ(seen_worker, 0u);
}

TEST(Pool, ExceptionsPropagateToCaller) {
    for (const unsigned threads : {1u, 4u}) {
        Pool pool(threads);
        auto task = [&](unsigned, std::size_t item) {
            if (item == 37) throw std::runtime_error("boom");
        };
        EXPECT_THROW(pool.run(1000, TaskView(task)), std::runtime_error);
        // The pool survives a failed run.
        std::atomic<std::size_t> count{0};
        auto ok = [&](unsigned, std::size_t) { count.fetch_add(1); };
        pool.run(10, TaskView(ok));
        EXPECT_EQ(count.load(), 10u);
    }
}

TEST(CancelFlag, RequestResetRoundTrip) {
    CancelFlag flag;
    EXPECT_FALSE(flag.requested());
    flag.request();
    EXPECT_TRUE(flag.requested());
    flag.request();  // idempotent
    EXPECT_TRUE(flag.requested());
    flag.reset();
    EXPECT_FALSE(flag.requested());
}

TEST(WorkerSet, BuildsOneClonePerWorker) {
    WorkerSet<std::vector<int>> set(4, [](unsigned w) {
        return std::vector<int>(3, static_cast<int>(w));
    });
    EXPECT_EQ(set.size(), 4u);
    for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(set[w][0], static_cast<int>(w));
}

// A miniature of the learning pass: items are processed in order against a
// shared "tie count"; every item whose index is divisible by `mutate_every`
// mutates the state, and each item's result depends on the state it saw.
// The serial schedule defines the expected observation sequence; the
// speculative run must reproduce it exactly at any worker count.
struct ToyRun {
    std::vector<std::uint64_t> observed;  // state version each item recorded
    std::uint64_t version = 0;
};

ToyRun toy_run(Pool* pool, unsigned workers, std::size_t n, std::size_t mutate_every) {
    ToyRun run;
    const SpeculateOptions opt;
    std::vector<std::uint64_t> slots(resolved_max_window(opt, workers == 0 ? 8 : workers));
    std::uint64_t dispatch_version = 0;
    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = run.version; };
    auto compute = [&](unsigned, std::size_t item, std::size_t slot) {
        // Simulated work whose answer depends on the shared state.
        slots[slot] = run.version * 1000003u + item;
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> Commit {
        if (run.version != dispatch_version) return Commit::Retry;
        run.observed.push_back(slots[slot]);
        if (mutate_every != 0 && item % mutate_every == 0) ++run.version;
        return Commit::Done;
    };
    speculate_ordered(pool, n, opt, prepare, compute, commit, workers);
    return run;
}

TEST(Speculate, MatchesSerialScheduleUnderMutation) {
    const ToyRun serial = toy_run(nullptr, 1, 500, 7);
    for (const unsigned workers : {2u, 8u}) {
        Pool pool(workers);
        const ToyRun parallel = toy_run(&pool, workers, 500, 7);
        EXPECT_EQ(parallel.version, serial.version) << workers;
        EXPECT_EQ(parallel.observed, serial.observed) << workers;
    }
}

TEST(Speculate, NoMutationNeverRetries) {
    Pool pool(4);
    std::atomic<std::size_t> computed{0};
    const SpeculateOptions opt;
    std::vector<std::size_t> slots(resolved_max_window(opt, 4));
    auto prepare = [](std::size_t, std::size_t) {};
    auto compute = [&](unsigned, std::size_t item, std::size_t slot) {
        slots[slot] = item;
        computed.fetch_add(1, std::memory_order_relaxed);
    };
    std::size_t committed = 0;
    auto commit = [&](std::size_t item, std::size_t slot) -> Commit {
        EXPECT_EQ(slots[slot], item);
        ++committed;
        return Commit::Done;
    };
    speculate_ordered(&pool, 300, opt, prepare, compute, commit, 4);
    EXPECT_EQ(committed, 300u);
    // Without retries every item is computed exactly once.
    EXPECT_EQ(computed.load(), 300u);
}

TEST(Speculate, StopAbandonsTheRest) {
    Pool pool(4);
    const SpeculateOptions opt;
    std::vector<std::size_t> slots(resolved_max_window(opt, 4));
    auto prepare = [](std::size_t, std::size_t) {};
    auto compute = [&](unsigned, std::size_t item, std::size_t slot) { slots[slot] = item; };
    std::size_t committed = 0;
    auto commit = [&](std::size_t, std::size_t) -> Commit {
        if (committed == 10) return Commit::Stop;
        ++committed;
        return Commit::Done;
    };
    speculate_ordered(&pool, 1000, opt, prepare, compute, commit, 4);
    EXPECT_EQ(committed, 10u);
}

}  // namespace
}  // namespace seqlearn::exec
